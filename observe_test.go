package scalesim

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestObserveRunTraceCoverage checks the tentpole trace contract: a traced
// run yields one run-root span, one layer span per topology layer, and a
// stage span for every pipeline stage under every layer — and the exported
// Chrome trace file is valid JSON carrying one event per span.
func TestObserveRunTraceCoverage(t *testing.T) {
	cfg := DefaultConfig()
	topo, err := BuiltinTopology("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, err := New(cfg).Run(context.Background(), topo, WithTrace(dir))
	if err != nil {
		t.Fatal(err)
	}

	spans := res.Spans()
	var runs, layers int
	stagesByLayer := map[int64]map[string]bool{}
	for _, s := range spans {
		switch s.Cat {
		case "run":
			runs++
		case "layer":
			layers++
			if stagesByLayer[s.ID] == nil {
				stagesByLayer[s.ID] = map[string]bool{}
			}
		}
	}
	for _, s := range spans {
		if s.Cat == "stage" {
			if stagesByLayer[s.Parent] == nil {
				t.Fatalf("stage span %q has non-layer parent %d", s.Name, s.Parent)
			}
			stagesByLayer[s.Parent][s.Name] = true
		}
	}
	if runs != 1 {
		t.Fatalf("run spans = %d, want 1", runs)
	}
	if layers != len(topo.Layers) {
		t.Fatalf("layer spans = %d, want %d", layers, len(topo.Layers))
	}
	for id, stages := range stagesByLayer {
		for _, want := range []string{"compute", "layout", "memory", "energy"} {
			if !stages[want] {
				t.Errorf("layer span %d missing %q stage span (has %v)", id, want, stages)
			}
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, cfg.RunName+".trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != len(spans) {
		t.Fatalf("trace events = %d, want %d (one per span)", len(trace.TraceEvents), len(spans))
	}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete event X", ev.Name, ev.Ph)
		}
	}
}

// TestObserveRunUntracedHasNoProfile pins the detached fast path: without
// WithTrace a run records no spans and Profile returns nil.
func TestObserveRunUntracedHasNoProfile(t *testing.T) {
	cfg := DefaultConfig()
	topo, err := BuiltinTopology("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cfg).Run(context.Background(), topo)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Profile(); p != nil {
		t.Fatalf("untraced run has a profile: %+v", p)
	}
	if sp := res.Spans(); sp != nil {
		t.Fatalf("untraced run has %d spans", len(sp))
	}
}

// TestObserveProfileAttribution checks that at parallelism 1 the per-layer
// wall-time attribution accounts for (nearly) the whole run: layer spans
// are back-to-back under the run root, so their sum must land within 5% of
// the measured wall time on a run long enough to dominate fixed overheads.
func TestObserveProfileAttribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Memory.Enabled = true
	topo, err := BuiltinTopology("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cfg).Run(context.Background(), topo, WithTrace(""), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile()
	if p == nil {
		t.Fatal("traced run has no profile")
	}
	if p.Wall <= 0 {
		t.Fatalf("profile wall time = %v", p.Wall)
	}
	if len(p.Layers) != len(topo.Layers) {
		t.Fatalf("profile layers = %d, want %d", len(p.Layers), len(topo.Layers))
	}
	var layerSum, stageSum int64
	for _, l := range p.Layers {
		layerSum += int64(l.Total)
	}
	for _, s := range p.Stages {
		stageSum += int64(s.Total)
		if s.Calls != len(topo.Layers) {
			t.Errorf("stage %q ran %d times, want %d", s.Name, s.Calls, len(topo.Layers))
		}
	}
	wall := int64(p.Wall)
	if gap := wall - layerSum; gap < 0 || gap > wall/20 {
		t.Errorf("layer attribution %v vs wall %v: gap beyond 5%%", layerSum, wall)
	}
	if stageSum > layerSum {
		t.Errorf("stage total %d exceeds enclosing layer total %d", stageSum, layerSum)
	}
}

// TestObserveLayerCacheAttr checks the cache-fidelity attribute: re-running
// an identical topology against a shared cache marks every layer span as a
// cache hit, and Profile surfaces that per layer.
func TestObserveLayerCacheAttr(t *testing.T) {
	cfg := DefaultConfig()
	topo, err := BuiltinTopology("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0, 0)
	sim := New(cfg)
	if _, err := sim.Run(context.Background(), topo, WithCache(cache)); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), topo, WithCache(cache), WithTrace(""))
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile()
	if p == nil {
		t.Fatal("traced run has no profile")
	}
	for _, l := range p.Layers {
		if !l.Cached {
			t.Errorf("layer %q not marked cached on the warm re-run", l.Name)
		}
	}
}

// TestProgressDeterministicAcrossParallelism pins the WithProgress
// contract at every pool width: exactly one callback per layer, each index
// once, Done strictly increasing to the layer count.
func TestProgressDeterministicAcrossParallelism(t *testing.T) {
	cfg := DefaultConfig()
	topo, err := BuiltinTopology("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		var mu sync.Mutex
		calls := 0
		seen := map[int]bool{}
		lastDone := 0
		_, err := New(cfg).Run(context.Background(), topo, WithParallelism(par),
			WithProgress(func(p LayerProgress) {
				mu.Lock()
				defer mu.Unlock()
				calls++
				if seen[p.Index] {
					t.Errorf("parallelism %d: layer %d reported twice", par, p.Index)
				}
				seen[p.Index] = true
				if p.Done != lastDone+1 {
					t.Errorf("parallelism %d: Done %d after %d, want +1 steps", par, p.Done, lastDone)
				}
				lastDone = p.Done
				if p.Total != len(topo.Layers) {
					t.Errorf("parallelism %d: Total = %d, want %d", par, p.Total, len(topo.Layers))
				}
			}))
		if err != nil {
			t.Fatal(err)
		}
		if calls != len(topo.Layers) {
			t.Errorf("parallelism %d: %d progress callbacks, want %d", par, calls, len(topo.Layers))
		}
	}
}

// TestProgressSweepDeterministicAcrossParallelism pins WithSweepProgress
// the same way: one callback per sweep point at any pool width, Done
// strictly increasing.
func TestProgressSweepDeterministicAcrossParallelism(t *testing.T) {
	topo, err := BuiltinTopology("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	var points []SweepPoint
	for _, df := range []Dataflow{OutputStationary, WeightStationary, InputStationary} {
		cfg := DefaultConfig()
		cfg.Dataflow = df
		points = append(points, SweepPoint{Name: "df-" + df.String(), Config: cfg, Topology: topo})
	}
	cfg16 := DefaultConfig()
	cfg16.ArrayRows, cfg16.ArrayCols = 16, 16
	points = append(points, SweepPoint{Name: "arr16", Config: cfg16, Topology: topo})
	for _, par := range []int{1, 2, 8} {
		var mu sync.Mutex
		calls := 0
		seen := map[string]bool{}
		lastDone := 0
		_, err := Sweep(context.Background(), points,
			WithParallelism(par),
			WithSweepProgress(func(p SweepPointProgress) {
				mu.Lock()
				defer mu.Unlock()
				calls++
				if seen[p.Point] {
					t.Errorf("parallelism %d: point %q reported twice", par, p.Point)
				}
				seen[p.Point] = true
				if p.Done != lastDone+1 {
					t.Errorf("parallelism %d: Done %d after %d, want +1 steps", par, p.Done, lastDone)
				}
				lastDone = p.Done
				if p.Total != len(points) {
					t.Errorf("parallelism %d: Total = %d, want %d", par, p.Total, len(points))
				}
				if p.Err != nil {
					t.Errorf("parallelism %d: point %q failed: %v", par, p.Point, p.Err)
				}
			}))
		if err != nil {
			t.Fatal(err)
		}
		if calls != len(points) {
			t.Errorf("parallelism %d: %d sweep callbacks, want %d", par, calls, len(points))
		}
	}
}
