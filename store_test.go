package scalesim

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"
)

// TestStoreWarmStartsFreshCache is the tentpole's persistence bar: a fresh
// cache (a restarted process) pointed at the same store directory must
// answer every previously-seen layer from disk — zero simulations — with
// reports byte-identical to an uncached run.
func TestStoreWarmStartsFreshCache(t *testing.T) {
	cfg := fullModelConfig()
	topo := repeatedShapeTopology(4)
	ctx := context.Background()
	dir := t.TempDir()

	plain, err := New(cfg).Run(ctx, topo)
	if err != nil {
		t.Fatal(err)
	}

	// "Process one": cold run against an empty store.
	first := NewCache(0, 0)
	cold, err := New(cfg).Run(ctx, topo, WithCache(first), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheStats.Misses != 2 || cold.CacheStats.Hits != 3 {
		t.Errorf("cold stats %+v, want 2 misses, 3 hits", cold.CacheStats)
	}
	st, ok := first.StoreStats()
	if !ok {
		t.Fatal("StoreStats reports no store attached")
	}
	if st.Puts == 0 || st.Entries == 0 {
		t.Fatalf("store after cold run: %+v, want persisted entries", st)
	}
	if err := first.CloseStore(); err != nil {
		t.Fatalf("CloseStore: %v", err)
	}
	if _, ok := first.StoreStats(); ok {
		t.Fatal("StoreStats still reports a store after CloseStore")
	}

	// "Process two": fresh in-memory cache, same directory.
	second := NewCache(0, 0)
	warm, err := New(cfg).Run(ctx, topo, WithCache(second), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheStats.Misses != 0 || warm.CacheStats.Hits != 5 {
		t.Errorf("warm stats %+v, want 0 misses, 5 hits (all from disk)", warm.CacheStats)
	}
	if cs := second.Stats(); cs.StoreHits == 0 {
		t.Errorf("cache stats %+v, want StoreHits > 0", cs)
	}
	st2, _ := second.StoreStats()
	if st2.Hits == 0 || st2.Recovered == 0 {
		t.Errorf("store stats %+v, want disk hits and recovered entries", st2)
	}

	if !reflect.DeepEqual(plain.Layers, cold.Layers) {
		t.Error("stored cold run differs from uncached run")
	}
	if !reflect.DeepEqual(plain.Layers, warm.Layers) {
		t.Error("disk-served warm run differs from uncached run")
	}
	ref := reportBytes(t, plain)
	if !bytes.Equal(ref, reportBytes(t, cold)) {
		t.Error("cold stored reports not byte-identical to uncached")
	}
	if !bytes.Equal(ref, reportBytes(t, warm)) {
		t.Error("warm disk-served reports not byte-identical to uncached")
	}
	if err := second.CloseStore(); err != nil {
		t.Fatalf("CloseStore: %v", err)
	}
}

func TestAttachStoreConflicts(t *testing.T) {
	c := NewCache(0, 0)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := c.AttachStore(dirA, 0); err != nil {
		t.Fatalf("AttachStore: %v", err)
	}
	defer c.CloseStore()
	if err := c.AttachStore(dirA, 0); err != nil {
		t.Fatalf("re-attaching the same dir: %v", err)
	}
	if err := c.AttachStore(dirB, 0); err == nil {
		t.Fatal("attaching a second dir succeeded")
	}
	// The directory is single-owner: a second cache cannot attach it.
	other := NewCache(0, 0)
	if err := other.AttachStore(dirA, 0); err == nil {
		other.CloseStore()
		t.Fatal("second cache attached an owned store dir")
	}
}

func TestStoreCodecRoundTrips(t *testing.T) {
	var codec storeCodec

	f := 3.14159e-7
	p, ok := codec.Encode(f)
	if !ok {
		t.Fatal("Encode(float64) not ok")
	}
	v, size, ok := codec.Decode(p)
	if !ok || size != 8 || v.(float64) != f {
		t.Fatalf("float64 round trip = %v, %d, %v", v, size, ok)
	}
	nan := math.NaN()
	p, _ = codec.Encode(nan)
	v, _, _ = codec.Decode(p)
	if !math.IsNaN(v.(float64)) {
		t.Fatalf("NaN round trip = %v", v)
	}

	blob := []byte("trace,bytes\n1,2\n")
	p, ok = codec.Encode(blob)
	if !ok {
		t.Fatal("Encode([]byte) not ok")
	}
	v, size, ok = codec.Decode(p)
	if !ok || size != int64(len(blob)) || !bytes.Equal(v.([]byte), blob) {
		t.Fatalf("blob round trip = %q, %d, %v", v, size, ok)
	}

	if _, ok := codec.Encode(struct{ X int }{1}); ok {
		t.Fatal("Encode accepted an unknown type")
	}
	if _, _, ok := codec.Decode(nil); ok {
		t.Fatal("Decode accepted an empty payload")
	}
	if _, _, ok := codec.Decode([]byte{codecLayerResult, 0xFF}); ok {
		t.Fatal("Decode accepted a truncated gob payload")
	}
}
