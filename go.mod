module scalesim

go 1.24
