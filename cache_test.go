package scalesim

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
)

// fullModelConfig enables every model pass so cached results exercise all
// pointered sub-structures (sparse rows, energy reports, memory rows).
func fullModelConfig() Config {
	cfg := DefaultConfig()
	cfg.ArrayRows, cfg.ArrayCols = 16, 16
	cfg.Energy.Enabled = true
	cfg.Memory.Enabled = true
	cfg.Layout.Enabled = true
	return cfg
}

// repeatedShapeTopology builds a ResNet-style workload: `repeats` copies of
// the same conv block (distinct names), plus one distinct tail layer.
func repeatedShapeTopology(repeats int) *Topology {
	topo := &Topology{Name: "blocks"}
	for i := 0; i < repeats; i++ {
		topo.Layers = append(topo.Layers, Layer{
			Name: fmt.Sprintf("block%d", i), Kind: 0, /* Conv */
			IfmapH: 14, IfmapW: 14, FilterH: 3, FilterW: 3,
			Channels: 32, NumFilters: 32, Stride: 1,
		})
	}
	topo.Layers = append(topo.Layers, Layer{
		Name: "tail", Kind: 1 /* GEMM */, M: 64, N: 48, K: 96,
	})
	return topo
}

// TestCachedMatchesUncachedByteIdentical is the tentpole's correctness
// bar: a cached run (cold and warm) must produce reports byte-identical
// to an uncached run, through ReportSet.WriteTo, with every model enabled.
func TestCachedMatchesUncachedByteIdentical(t *testing.T) {
	cfg := fullModelConfig()
	topo := repeatedShapeTopology(4)
	ctx := context.Background()

	plain, err := New(cfg).Run(ctx, topo)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0, 0)
	cold, err := New(cfg).Run(ctx, topo, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := New(cfg).Run(ctx, topo, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Layers, cold.Layers) {
		t.Error("cold cached run differs from uncached run")
	}
	if !reflect.DeepEqual(plain.Layers, warm.Layers) {
		t.Error("warm cached run differs from uncached run")
	}
	ref := reportBytes(t, plain)
	if !bytes.Equal(ref, reportBytes(t, cold)) {
		t.Error("cold cached reports not byte-identical to uncached")
	}
	if !bytes.Equal(ref, reportBytes(t, warm)) {
		t.Error("warm cached reports not byte-identical to uncached")
	}

	// 4 repeated blocks + 1 tail: the cold run must simulate exactly the
	// two distinct shapes and serve the other three layers from cache.
	if cold.CacheStats.Misses != 2 || cold.CacheStats.Hits != 3 {
		t.Errorf("cold stats %+v, want 2 misses, 3 hits", cold.CacheStats)
	}
	if warm.CacheStats.Misses != 0 || warm.CacheStats.Hits != 5 {
		t.Errorf("warm stats %+v, want 0 misses, 5 hits", warm.CacheStats)
	}
	if plain.CacheStats != (RunCacheStats{}) {
		t.Errorf("uncached run has cache stats %+v", plain.CacheStats)
	}
}

// TestCacheSparseRunsByteIdentical covers the sparse compute path, whose
// results carry the pointered SparseRow that must be deep-copied and
// relabeled per layer.
func TestCacheSparseRunsByteIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrayRows, cfg.ArrayCols = 16, 16
	cfg.Sparsity.Enabled = true
	cfg.Sparsity.BlockSize = 4
	cfg.Energy.Enabled = true
	sp, err := ParseSparsity("2:4")
	if err != nil {
		t.Fatal(err)
	}
	topo := repeatedShapeTopology(3).WithSparsity(sp)
	ctx := context.Background()

	plain, err := New(cfg).Run(ctx, topo)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0, 0)
	for pass := 0; pass < 2; pass++ {
		got, err := New(cfg).Run(ctx, topo, WithCache(cache))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Layers, got.Layers) {
			t.Errorf("pass %d: sparse cached run differs from uncached", pass)
		}
		if !bytes.Equal(reportBytes(t, plain), reportBytes(t, got)) {
			t.Errorf("pass %d: sparse reports not byte-identical", pass)
		}
	}
	// Every layer keeps its own name in the sparse report rows.
	warm, err := New(cfg).Run(ctx, topo, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.Layers {
		if warm.Layers[i].Sparse == nil {
			continue
		}
		if got, want := warm.Layers[i].Sparse.LayerName, topo.Layers[i].Name; got != want {
			t.Errorf("layer %d sparse row named %q, want %q", i, got, want)
		}
	}
}

// TestCacheHitsAreIsolatedCopies: mutating one layer's result (including
// its maps and pointered rows) must not leak into the cache or into other
// layers served from the same entry.
func TestCacheHitsAreIsolatedCopies(t *testing.T) {
	cfg := fullModelConfig()
	topo := repeatedShapeTopology(2)
	cache := NewCache(0, 0)
	ctx := context.Background()

	first, err := New(cfg).Run(ctx, topo, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize everything reachable from the first result.
	for i := range first.Layers {
		l := &first.Layers[i]
		l.ComputeCycles = -1
		l.Memory.StallCycles = -999
		if l.Energy != nil {
			for c := range l.Energy.PerComponent {
				l.Energy.PerComponent[c] = -1
			}
			l.Energy.TotalPJ = -1
		}
	}
	second, err := New(cfg).Run(ctx, topo, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheStats.Hits != int64(len(topo.Layers)) {
		t.Fatalf("second run stats %+v, want all hits", second.CacheStats)
	}
	plain, err := New(cfg).Run(ctx, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Layers, second.Layers) {
		t.Error("mutating a cached result's copy corrupted the cache")
	}
}

// TestCacheSingleFlightParallel: concurrent same-shape layers coalesce on
// one simulation, so hit/miss counts are exact at any parallelism (and on
// any core count) — not just when layers run sequentially.
func TestCacheSingleFlightParallel(t *testing.T) {
	cfg := fullModelConfig()
	topo := repeatedShapeTopology(7) // 7 identical blocks + 1 distinct tail
	ctx := context.Background()

	plain, err := New(cfg).Run(ctx, topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		cache := NewCache(0, 0)
		res, err := New(cfg).Run(ctx, topo, WithCache(cache), WithParallelism(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.CacheStats.Misses != 2 || res.CacheStats.Hits != 6 {
			t.Errorf("parallelism %d: stats %+v, want exactly 2 misses, 6 hits",
				par, res.CacheStats)
		}
		if !reflect.DeepEqual(plain.Layers, res.Layers) {
			t.Errorf("parallelism %d: coalesced run differs from uncached", par)
		}
	}
}

// TestCacheNoCrossContamination shares one cache across sweep points that
// differ in exactly one fingerprinted field each; every point must match
// its own uncached run bit for bit.
func TestCacheNoCrossContamination(t *testing.T) {
	base := fullModelConfig()
	variants := map[string]func(*Config){
		"baseline":      func(c *Config) {},
		"array":         func(c *Config) { c.ArrayRows, c.ArrayCols = 8, 8 },
		"dataflow":      func(c *Config) { c.Dataflow = WeightStationary },
		"sram":          func(c *Config) { c.IfmapSRAMKB = 64 },
		"bandwidth":     func(c *Config) { c.BandwidthWords = 4 },
		"dram-channels": func(c *Config) { c.Memory.Channels = 2 },
		"dram-tech":     func(c *Config) { c.Memory.Technology = "LPDDR4" },
		"layout-banks":  func(c *Config) { c.Layout.Banks = 4 },
		"energy-gating": func(c *Config) { c.Energy.ClockGating = false },
		"energy-freq":   func(c *Config) { c.Energy.FrequencyMHz = 700 },
		// RunName is deliberately NOT fingerprinted: see below.
	}
	topo := repeatedShapeTopology(2)
	ctx := context.Background()
	cache := NewCache(0, 0)

	var points []SweepPoint
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	for _, name := range names {
		cfg := base
		variants[name](&cfg)
		points = append(points, SweepPoint{Name: name, Config: cfg, Topology: topo})
	}
	results, err := Sweep(ctx, points, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range results {
		if sr.Err != nil {
			t.Fatalf("point %s: %v", points[i].Name, sr.Err)
		}
		solo, err := New(points[i].Config).Run(ctx, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(solo.Layers, sr.Result.Layers) {
			t.Errorf("point %s: shared-cache sweep result differs from uncached run", points[i].Name)
		}
		if !bytes.Equal(reportBytes(t, solo), reportBytes(t, sr.Result)) {
			t.Errorf("point %s: reports not byte-identical to uncached run", points[i].Name)
		}
	}

	// RunName is a label, not a simulation input: two configs differing
	// only in RunName share entries.
	renamed := base
	renamed.RunName = "other_label"
	r1, err := New(base).Run(ctx, topo, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(renamed).Run(ctx, topo, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheStats.Hits == 0 || r2.CacheStats.Misses != 0 {
		t.Errorf("RunName-only variants did not share cache entries: %+v / %+v",
			r1.CacheStats, r2.CacheStats)
	}
}

// TestCacheDistinguishesERT: a customized energy reference table is part
// of the fingerprint — content, not pointer identity.
func TestCacheDistinguishesERT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Energy.Enabled = true
	topo := repeatedShapeTopology(1)
	cache := NewCache(0, 0)
	ctx := context.Background()

	if _, err := New(cfg).Run(ctx, topo, WithCache(cache)); err != nil {
		t.Fatal(err)
	}
	// Same contents, different allocation: must hit.
	same, err := New(cfg).Run(ctx, topo, WithCache(cache), WithERT(DefaultERT()))
	if err != nil {
		t.Fatal(err)
	}
	if same.CacheStats.Misses != 0 {
		t.Errorf("identical ERT contents missed: %+v", same.CacheStats)
	}
	// Changed contents: must not hit.
	hot := DefaultERT()
	hot.Entries["mac"]["mac_random"] *= 2
	diff, err := New(cfg).Run(ctx, topo, WithCache(cache), WithERT(hot))
	if err != nil {
		t.Fatal(err)
	}
	if diff.CacheStats.Hits != 0 {
		t.Errorf("modified ERT produced hits: %+v", diff.CacheStats)
	}
	solo, err := New(cfg).Run(ctx, topo, WithERT(hot))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo.Layers, diff.Layers) {
		t.Error("modified-ERT cached run differs from uncached run")
	}
}

// TestCacheEvictionUnderSmallLimit: a cache big enough for only a few
// results must evict but never return wrong data.
func TestCacheEvictionUnderSmallLimit(t *testing.T) {
	cfg := fullModelConfig()
	topo := &Topology{Name: "distinct"}
	for i := 0; i < 6; i++ {
		topo.Layers = append(topo.Layers, Layer{
			Name: fmt.Sprintf("g%d", i), Kind: 1, M: 32 + 8*i, N: 32, K: 48,
		})
	}
	cache := NewCache(2, 0) // at most two cached layer results
	ctx := context.Background()

	cached, err := New(cfg).Run(ctx, topo, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(cfg).Run(ctx, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Layers, cached.Layers) {
		t.Error("eviction-pressured run differs from uncached run")
	}
	st := cache.Stats()
	if st.Entries > 2 {
		t.Errorf("cache holds %d entries, limit 2", st.Entries)
	}
	if st.Evictions == 0 {
		t.Error("six distinct shapes in a two-entry cache caused no evictions")
	}
	// A second run still works (and still matches) even though most
	// entries were evicted.
	again, err := New(cfg).Run(ctx, topo, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Layers, again.Layers) {
		t.Error("post-eviction rerun differs from uncached run")
	}
}

// TestCacheConcurrentSweepSharedCache runs many sweep points over one
// cache with full parallelism; meant to be exercised under -race. Every
// point must equal its uncached twin.
func TestCacheConcurrentSweepSharedCache(t *testing.T) {
	topo := repeatedShapeTopology(3)
	cache := NewCache(0, 0)
	ctx := context.Background()

	var points []SweepPoint
	for i := 0; i < 12; i++ {
		cfg := fullModelConfig()
		// Half the points repeat a config (cache hits across concurrent
		// points), half are distinct (concurrent inserts).
		cfg.Memory.Channels = 1 + i%2
		cfg.Energy.FrequencyMHz = float64(500 + 100*(i%3))
		points = append(points, SweepPoint{
			Name: fmt.Sprintf("p%d", i), Config: cfg, Topology: topo,
		})
	}
	results, err := Sweep(ctx, points, WithCache(cache), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses int64
	for i, sr := range results {
		if sr.Err != nil {
			t.Fatalf("point %d: %v", i, sr.Err)
		}
		solo, err := New(points[i].Config).Run(ctx, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(solo.Layers, sr.Result.Layers) {
			t.Errorf("point %d: concurrent shared-cache result differs from uncached", i)
		}
		hits += sr.Result.CacheStats.Hits
		misses += sr.Result.CacheStats.Misses
	}
	// Single-flight is cache-wide: the 12 points cover 6 distinct configs
	// × 2 distinct shapes = 12 distinct keys, so even with every point in
	// flight at once exactly 12 of the 48 layer lookups may miss.
	if misses != 12 || hits != 36 {
		t.Errorf("aggregate stats hits=%d misses=%d, want 36/12 (cross-point coalescing)",
			hits, misses)
	}
}

// TestCacheAnonymousLayerMemoryRow: a cache entry populated by a nameless
// layer must still yield a MEMORY_REPORT row when a named same-shape layer
// takes the hit (the row's presence sentinel is its non-empty name).
func TestCacheAnonymousLayerMemoryRow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrayRows, cfg.ArrayCols = 8, 8
	cfg.Memory.Enabled = true
	topo := &Topology{Name: "anon", Layers: []Layer{
		{Name: "", Kind: 1, M: 24, N: 16, K: 32},
		{Name: "named", Kind: 1, M: 24, N: 16, K: 32},
	}}
	ctx := context.Background()

	plain, err := New(cfg).Run(ctx, topo, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := New(cfg).Run(ctx, topo, WithCache(NewCache(0, 0)), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Layers, cached.Layers) {
		t.Error("anonymous-layer cached run differs from uncached")
	}
	if !bytes.Equal(reportBytes(t, plain), reportBytes(t, cached)) {
		t.Error("anonymous-layer reports not byte-identical")
	}
	if got := cached.Layers[1].Memory.LayerName; got != "named" {
		t.Errorf("hit served to named layer carries memory row name %q, want %q", got, "named")
	}
}

// uncacheableStage is deterministic but declares no fingerprint, so
// whole-layer caching must be bypassed when it is in the pipeline.
type uncacheableStage struct{}

func (uncacheableStage) Name() string { return "opaque" }
func (uncacheableStage) Apply(_ context.Context, _ *StageContext, _ *LayerResult) error {
	return nil
}

func TestCacheBypassedForUnfingerprintedStage(t *testing.T) {
	cfg := DefaultConfig()
	topo := repeatedShapeTopology(2)
	cache := NewCache(0, 0)
	ctx := context.Background()

	stages := append(DefaultStages(), uncacheableStage{})
	res, err := New(cfg).Run(ctx, topo, WithCache(cache), WithStages(stages...))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats != (RunCacheStats{}) {
		t.Errorf("unfingerprintable pipeline recorded stats %+v", res.CacheStats)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Errorf("unfingerprintable pipeline cached %d entries", st.Entries)
	}
}

// fingerprintedStage opts into caching via CacheFingerprint; its parameter
// is encoded in the fingerprint, so changing it must change the key.
type fingerprintedStage struct{ scale int64 }

func (f fingerprintedStage) Name() string { return "scaled" }
func (f fingerprintedStage) CacheFingerprint() string {
	return fmt.Sprintf("test/scaled/v1/%d", f.scale)
}
func (f fingerprintedStage) Apply(_ context.Context, _ *StageContext, lr *LayerResult) error {
	lr.TotalCycles += f.scale
	return nil
}

func TestCacheCustomFingerprintedStage(t *testing.T) {
	cfg := DefaultConfig()
	topo := repeatedShapeTopology(1)
	cache := NewCache(0, 0)
	ctx := context.Background()

	runWith := func(scale int64) *Result {
		t.Helper()
		res, err := New(cfg).Run(ctx, topo,
			WithCache(cache), WithStages(append(DefaultStages(), fingerprintedStage{scale})...))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := runWith(10)
	b := runWith(10)
	if b.CacheStats.Misses != 0 {
		t.Errorf("same fingerprint missed: %+v", b.CacheStats)
	}
	if !reflect.DeepEqual(a.Layers, b.Layers) {
		t.Error("cached custom-stage run differs")
	}
	c := runWith(20)
	if c.CacheStats.Hits != 0 {
		t.Errorf("different stage parameter hit the cache: %+v", c.CacheStats)
	}
	if c.TotalCycles() == a.TotalCycles() {
		t.Error("stage parameter change had no effect (test is vacuous)")
	}
}

// TestSharedCacheOption: WithSharedCache wires the process-wide cache.
func TestSharedCacheOption(t *testing.T) {
	SharedCache().Purge()
	defer SharedCache().Purge() // leave no cross-test state

	cfg := DefaultConfig()
	topo := repeatedShapeTopology(1)
	ctx := context.Background()
	if _, err := New(cfg).Run(ctx, topo, WithSharedCache()); err != nil {
		t.Fatal(err)
	}
	res, err := New(cfg).Run(ctx, topo, WithSharedCache())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats.Misses != 0 || res.CacheStats.Hits == 0 {
		t.Errorf("second shared-cache run stats %+v, want all hits", res.CacheStats)
	}
	if st := SharedCache().Stats(); st.Entries == 0 {
		t.Error("shared cache empty after two runs")
	}
}
