package scalesim

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestWriteTraces(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.ArrayRows, cfg.ArrayCols = 8, 8
	cfg.Memory.Enabled = true

	topo := &Topology{Name: "tiny", Layers: []Layer{
		{Name: "G0", Kind: 1 /* GEMM */, M: 24, N: 16, K: 32},
	}}
	if err := New(cfg).WriteTraces(topo, dir); err != nil {
		t.Fatal(err)
	}

	for _, suffix := range []string{
		"_sram_ifmap_read.csv", "_sram_filter_read.csv",
		"_sram_ofmap_write.csv", "_dram_trace.csv",
	} {
		path := filepath.Join(dir, "G0"+suffix)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", suffix, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", suffix)
		}
	}

	// SRAM trace rows must be "cycle, addr..." with non-negative,
	// non-decreasing... (cycles may interleave across phases, so just
	// validate the format and address region).
	f, err := os.Open(filepath.Join(dir, "G0_sram_ifmap_read.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	rows := 0
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ", ")
		if len(fields) < 2 {
			t.Fatalf("malformed row %q", sc.Text())
		}
		for _, fld := range fields {
			if _, err := strconv.ParseInt(fld, 10, 64); err != nil {
				t.Fatalf("non-integer field %q", fld)
			}
		}
		rows++
	}
	if rows == 0 {
		t.Error("ifmap trace has no rows")
	}

	// DRAM trace has a header and R/W rows.
	data, err := os.ReadFile(filepath.Join(dir, "G0_dram_trace.csv"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "cycle, address, type, latency") {
		t.Error("dram trace missing header")
	}
	if !strings.Contains(s, ", R, ") || !strings.Contains(s, ", W, ") {
		t.Error("dram trace missing read or write rows")
	}
}

// TestWriteTracesCached: with a cache attached, repeated-shape layers and
// repeated WriteTraces calls serve the rendered trace bytes from the cache
// — and the files are byte-identical to the uncached ones.
func TestWriteTracesCached(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrayRows, cfg.ArrayCols = 8, 8
	cfg.Memory.Enabled = true
	topo := &Topology{Name: "tiny", Layers: []Layer{
		{Name: "G0", Kind: 1, M: 24, N: 16, K: 32},
		{Name: "G1", Kind: 1, M: 24, N: 16, K: 32}, // same shape as G0
		{Name: "G2", Kind: 1, M: 16, N: 16, K: 16},
	}}

	plainDir := t.TempDir()
	if err := New(cfg).WriteTraces(topo, plainDir); err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0, 0)
	sim := New(cfg, WithCache(cache))
	cachedDir := t.TempDir()
	if err := sim.WriteTraces(topo, cachedDir); err != nil {
		t.Fatal(err)
	}
	// G1 shares G0's shape: its four files must come from the cache, so
	// the cache saw strictly fewer misses than layers×files.
	st := cache.Stats()
	if st.Hits == 0 {
		t.Errorf("repeated-shape trace emission produced no cache hits: %+v", st)
	}

	suffixes := []string{
		"_sram_ifmap_read.csv", "_sram_filter_read.csv",
		"_sram_ofmap_write.csv", "_dram_trace.csv",
	}
	compare := func(dir string) {
		t.Helper()
		for _, l := range topo.Layers {
			for _, suffix := range suffixes {
				want, err := os.ReadFile(filepath.Join(plainDir, l.Name+suffix))
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(dir, l.Name+suffix))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("%s%s: cached trace differs from uncached", l.Name, suffix)
				}
			}
		}
	}
	compare(cachedDir)

	// Second emission (the after-a-Run scenario): everything is a hit and
	// the files still match.
	if _, err := sim.Run(context.Background(), topo); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	againDir := t.TempDir()
	if err := sim.WriteTraces(topo, againDir); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Misses != before.Misses {
		t.Errorf("second WriteTraces re-simulated: misses %d -> %d", before.Misses, after.Misses)
	}
	compare(againDir)
}

// TestWriteTracesOversizedNotCached: traces too large for the cache's
// byte budget are still written correctly, just not retained (and the
// capped tee must not have corrupted them).
func TestWriteTracesOversizedNotCached(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ArrayRows, cfg.ArrayCols = 8, 8
	cfg.Memory.Enabled = true
	topo := &Topology{Name: "tiny", Layers: []Layer{
		{Name: "G0", Kind: 1, M: 24, N: 16, K: 32},
	}}

	plainDir := t.TempDir()
	if err := New(cfg).WriteTraces(topo, plainDir); err != nil {
		t.Fatal(err)
	}
	cache := NewCache(0, 64) // MaxEntryBytes = 32: every blob is oversized
	cachedDir := t.TempDir()
	if err := New(cfg, WithCache(cache)).WriteTraces(topo, cachedDir); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Errorf("oversized trace blobs were cached: %+v", st)
	}
	for _, suffix := range []string{
		"_sram_ifmap_read.csv", "_sram_filter_read.csv",
		"_sram_ofmap_write.csv", "_dram_trace.csv",
	} {
		want, err := os.ReadFile(filepath.Join(plainDir, "G0"+suffix))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(cachedDir, "G0"+suffix))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: file written through capped tee differs", suffix)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Conv 1/2:ab"); got != "Conv_1_2_ab" {
		t.Errorf("sanitize: %q", got)
	}
}
