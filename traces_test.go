package scalesim

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestWriteTraces(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.ArrayRows, cfg.ArrayCols = 8, 8
	cfg.Memory.Enabled = true

	topo := &Topology{Name: "tiny", Layers: []Layer{
		{Name: "G0", Kind: 1 /* GEMM */, M: 24, N: 16, K: 32},
	}}
	if err := New(cfg).WriteTraces(topo, dir); err != nil {
		t.Fatal(err)
	}

	for _, suffix := range []string{
		"_sram_ifmap_read.csv", "_sram_filter_read.csv",
		"_sram_ofmap_write.csv", "_dram_trace.csv",
	} {
		path := filepath.Join(dir, "G0"+suffix)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", suffix, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", suffix)
		}
	}

	// SRAM trace rows must be "cycle, addr..." with non-negative,
	// non-decreasing... (cycles may interleave across phases, so just
	// validate the format and address region).
	f, err := os.Open(filepath.Join(dir, "G0_sram_ifmap_read.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	rows := 0
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ", ")
		if len(fields) < 2 {
			t.Fatalf("malformed row %q", sc.Text())
		}
		for _, fld := range fields {
			if _, err := strconv.ParseInt(fld, 10, 64); err != nil {
				t.Fatalf("non-integer field %q", fld)
			}
		}
		rows++
	}
	if rows == 0 {
		t.Error("ifmap trace has no rows")
	}

	// DRAM trace has a header and R/W rows.
	data, err := os.ReadFile(filepath.Join(dir, "G0_dram_trace.csv"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "cycle, address, type, latency") {
		t.Error("dram trace missing header")
	}
	if !strings.Contains(s, ", R, ") || !strings.Contains(s, ", W, ") {
		t.Error("dram trace missing read or write rows")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Conv 1/2:ab"); got != "Conv_1_2_ab" {
		t.Errorf("sanitize: %q", got)
	}
}
