package scalesim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"scalesim/internal/explore"
	"scalesim/internal/report"
)

// Design-space exploration: declare a parameter Space over Config knobs,
// one or more Objectives over run results, and a search strategy; Explore
// funnels candidates through Sweep batches sharing one layer-result cache
// and returns the exact multi-objective Pareto frontier.
//
//	space, _ := scalesim.ParseSpace("array=16..128:pow2; dataflow=os,ws,is")
//	frontier, err := scalesim.Explore(ctx, scalesim.DefaultConfig(), topo, space,
//		scalesim.WithExploreObjectives(scalesim.CyclesObjective(), scalesim.EnergyObjective()),
//		scalesim.WithExploreBudget(64), scalesim.WithExploreSeed(1))
//	frontier.WriteAll("out") // FRONTIER.csv + FRONTIER.json
//
// Million-point spaces are cracked with the two-phase screen-and-promote
// loop: WithPromoteTopK / WithPromoteMargin first evaluate the whole space
// at the Analytical fidelity tier (closed forms, microseconds per point),
// then promote only the frontier-adjacent candidates to the accurate tier
// and measure the analytical-vs-accurate error of each promoted point.
//
// Exploration is deterministic: a fixed seed yields a byte-identical
// frontier at any parallelism.

// Re-exported exploration types, so callers need only this package.
type (
	// Axis is one dimension of a design space. Build axes with
	// IntRangeAxis, Pow2Axis, EnumAxis or ParseAxis.
	Axis = explore.Axis
	// Space is an ordered list of axes spanning the design space.
	Space = explore.Space
	// Candidate selects one setting per space axis, by value index.
	Candidate = explore.Candidate
	// Searcher generates candidates through an ask/tell loop. The
	// built-in strategies are selected with WithSearchStrategy; a custom
	// implementation can be injected with WithSearcher.
	Searcher = explore.Strategy
)

// IntRangeAxis returns an integer axis enumerating lo, lo+step, ..., ≤ hi;
// apply writes the chosen value into the candidate configuration.
func IntRangeAxis(name string, lo, hi, step int, apply func(*Config, int)) (Axis, error) {
	return explore.IntRange(name, lo, hi, step, apply)
}

// Pow2Axis returns an integer axis enumerating the powers of two in
// [lo, hi].
func Pow2Axis(name string, lo, hi int, apply func(*Config, int)) (Axis, error) {
	return explore.Pow2(name, lo, hi, apply)
}

// EnumAxis returns an axis over an explicit list of string settings.
func EnumAxis(name string, values []string, apply func(*Config, string)) (Axis, error) {
	return explore.Enum(name, values, apply)
}

// ParseAxis parses one "knob=domain" axis spec over the registered
// configuration knobs — "array=8..128:pow2", "dataflow=os,ws",
// "channels=1..8:pow2", "dram_tech=DDR4,HBM2", "sparsity=dense,2:4" — see
// KnownAxisNames for the knob registry.
func ParseAxis(spec string) (Axis, error) { return explore.ParseAxis(spec) }

// ParseSpace parses a semicolon-separated list of axis specs.
func ParseSpace(spec string) (Space, error) { return explore.ParseSpace(spec) }

// KnownAxisNames lists the configuration knobs ParseAxis understands.
func KnownAxisNames() []string { return explore.KnownAxisNames() }

// Objective is one scalar exploration metric extracted from a Result.
// Objectives are minimized unless Maximize is set; the frontier reports
// raw values either way.
type Objective struct {
	// Name labels the objective in FRONTIER.csv and progress output.
	Name string
	// Maximize flips the sense for dominance comparisons.
	Maximize bool
	// Fn extracts the metric from a finished run.
	Fn func(*Result) float64
}

// CyclesObjective minimizes total runtime cycles (with stalls).
func CyclesObjective() Objective {
	return Objective{Name: "cycles", Fn: func(r *Result) float64 { return float64(r.TotalCycles()) }}
}

// EnergyObjective minimizes total energy in mJ. It reads 0 unless energy
// modeling is enabled in the candidate configurations.
func EnergyObjective() Objective {
	return Objective{Name: "energy_mj", Fn: func(r *Result) float64 { return r.TotalEnergyMJ() }}
}

// EDPObjective minimizes the energy-delay product (cycle·mJ), the paper's
// Table V metric. Requires energy modeling, like EnergyObjective.
func EDPObjective() Objective {
	return Objective{Name: "edp", Fn: func(r *Result) float64 { return r.Summary().EDP }}
}

// DRAMTrafficObjective minimizes main-memory traffic in bytes.
func DRAMTrafficObjective() Objective {
	return Objective{Name: "dram_bytes", Fn: func(r *Result) float64 { return float64(r.Summary().TotalDRAMBytes) }}
}

// UtilizationObjective maximizes the compute-cycle-weighted mean PE
// utilization.
func UtilizationObjective() Objective {
	return Objective{Name: "utilization", Maximize: true,
		Fn: func(r *Result) float64 { return r.Summary().AvgUtilization }}
}

// ParseObjectives parses a comma-separated objective list ("cycles",
// "energy", "edp", "dram", "utilization") for the CLI.
func ParseObjectives(s string) ([]Objective, error) {
	var out []Objective
	for _, name := range splitCommaList(s) {
		switch name {
		case "cycles":
			out = append(out, CyclesObjective())
		case "energy", "energy_mj":
			out = append(out, EnergyObjective())
		case "edp":
			out = append(out, EDPObjective())
		case "dram", "dram_bytes":
			out = append(out, DRAMTrafficObjective())
		case "utilization", "util":
			out = append(out, UtilizationObjective())
		default:
			return nil, fmt.Errorf("scalesim: unknown objective %q (valid: cycles, energy, edp, dram, utilization)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scalesim: empty objective list")
	}
	return out, nil
}

// SearchStrategy names a built-in candidate-generation strategy.
type SearchStrategy string

const (
	// GridSearch enumerates the whole space exhaustively.
	GridSearch SearchStrategy = "grid"
	// RandomSearch draws seeded uniform samples without replacement.
	RandomSearch SearchStrategy = "random"
	// EvolutionSearch mutates the current Pareto set, topped up with
	// random samples — adaptive hill climbing toward the frontier.
	EvolutionSearch SearchStrategy = "evolve"
	// AutoSearch picks GridSearch when the space fits in the evaluation
	// budget and RandomSearch otherwise. The default.
	AutoSearch SearchStrategy = "auto"
)

// ExploreProgress reports one evaluated candidate to a WithExploreProgress
// callback.
type ExploreProgress struct {
	Generation int      // 1-based batch number within the phase
	Evaluated  int      // candidates finished so far in this phase, including this one
	Budget     int      // maximum evaluations for this phase
	Point      string   // candidate label ("array=32,dataflow=ws")
	Fidelity   Fidelity // tier the candidate was evaluated at
	Err        error    // non-nil when the candidate was infeasible
}

// exploreOptions collects the Explore tunables.
type exploreOptions struct {
	objectives    []Objective
	strategy      SearchStrategy
	searcher      Searcher
	budget        int
	batch         int
	seed          int64
	parallelism   int
	cache         *Cache
	progress      func(ExploreProgress)
	traceOn       bool
	traceDir      string
	fidelity      Fidelity
	promoteTopK   int
	promoteMargin float64
}

// ExploreOption configures one Explore call.
type ExploreOption func(*exploreOptions)

// WithExploreObjectives sets the exploration objectives (default:
// CyclesObjective alone). Objective names must be unique.
func WithExploreObjectives(objs ...Objective) ExploreOption {
	return func(o *exploreOptions) {
		if len(objs) > 0 {
			o.objectives = objs
		}
	}
}

// WithExploreStrategy selects a built-in search strategy (default
// AutoSearch).
func WithExploreStrategy(s SearchStrategy) ExploreOption {
	return func(o *exploreOptions) { o.strategy = s }
}

// WithExploreSearcher injects a custom candidate-generation strategy,
// overriding WithExploreStrategy.
func WithExploreSearcher(s Searcher) ExploreOption {
	return func(o *exploreOptions) { o.searcher = s }
}

// WithExploreBudget bounds the search to at most n candidate evaluations
// (default 256). Infeasible candidates count: the budget bounds simulation
// work, not frontier size. With screening enabled the budget bounds the
// analytical screen; promotion adds at most PromoteTopK plus the
// margin-qualified candidates on top.
func WithExploreBudget(n int) ExploreOption {
	return func(o *exploreOptions) {
		if n > 0 {
			o.budget = n
		}
	}
}

// WithExploreBatchSize sets how many candidates are evaluated per Sweep
// batch — the generation size of adaptive strategies (default 8).
func WithExploreBatchSize(n int) ExploreOption {
	return func(o *exploreOptions) {
		if n > 0 {
			o.batch = n
		}
	}
}

// WithExploreSeed seeds the stochastic strategies (default 1). A fixed
// seed makes the whole exploration deterministic at any parallelism.
func WithExploreSeed(seed int64) ExploreOption {
	return func(o *exploreOptions) { o.seed = seed }
}

// WithExploreFidelity sets the accurate simulation tier candidates are
// evaluated at (default EventDriven) — the tier promoted candidates reach
// when screening is enabled, or the tier of every evaluation otherwise.
// The Analytical screen itself is not configurable.
func WithExploreFidelity(f Fidelity) ExploreOption {
	return func(o *exploreOptions) { o.fidelity = f }
}

// WithPromoteTopK enables two-phase screen-and-promote exploration: the
// whole budget is first evaluated at the Analytical tier, then the
// analytical Pareto front plus the k best-ranked candidates (by
// minimization-sense objective keys) are promoted to the accurate tier.
// The frontier is computed from accurate results only; every promoted
// point records its measured analytical-vs-accurate error. Setting k to
// at least the space size promotes every feasible candidate, reproducing
// the single-tier frontier exactly.
func WithPromoteTopK(k int) ExploreOption {
	return func(o *exploreOptions) {
		if k > 0 {
			o.promoteTopK = k
		}
	}
}

// WithPromoteMargin enables screening like WithPromoteTopK and widens the
// promotion set to every candidate within relative margin m of the
// analytical front: a candidate is promoted when shrinking each of its
// objective keys by m·|key| leaves it non-dominated. m of 0.1 promotes
// everything within ~10% of the front. Composes with WithPromoteTopK (the
// union is promoted).
func WithPromoteMargin(m float64) ExploreOption {
	return func(o *exploreOptions) {
		if m > 0 {
			o.promoteMargin = m
		}
	}
}

// Deprecated aliases for the uniformly-named ExploreOption constructors.
// They forward verbatim and will keep working; new code should use the
// WithExplore* forms.

// WithObjectives sets the exploration objectives.
//
// Deprecated: use WithExploreObjectives.
func WithObjectives(objs ...Objective) ExploreOption { return WithExploreObjectives(objs...) }

// WithSearchStrategy selects a built-in search strategy.
//
// Deprecated: use WithExploreStrategy.
func WithSearchStrategy(s SearchStrategy) ExploreOption { return WithExploreStrategy(s) }

// WithSearcher injects a custom candidate-generation strategy.
//
// Deprecated: use WithExploreSearcher.
func WithSearcher(s Searcher) ExploreOption { return WithExploreSearcher(s) }

// WithEvalBudget bounds the search to at most n candidate evaluations.
//
// Deprecated: use WithExploreBudget.
func WithEvalBudget(n int) ExploreOption { return WithExploreBudget(n) }

// WithBatchSize sets how many candidates are evaluated per Sweep batch.
//
// Deprecated: use WithExploreBatchSize.
func WithBatchSize(n int) ExploreOption { return WithExploreBatchSize(n) }

// WithSeed seeds the stochastic strategies.
//
// Deprecated: use WithExploreSeed.
func WithSeed(seed int64) ExploreOption { return WithExploreSeed(seed) }

// WithExploreParallelism bounds the worker pool each evaluation batch runs
// on (default GOMAXPROCS), like WithParallelism for Sweep.
func WithExploreParallelism(n int) ExploreOption {
	return func(o *exploreOptions) { o.parallelism = n }
}

// WithExploreCache shares an existing layer-result cache with the search.
// By default every Explore call creates a private cache with default
// bounds; passing one in lets repeated explorations (or surrounding Run
// and Sweep calls) reuse each other's simulations.
func WithExploreCache(c *Cache) ExploreOption {
	return func(o *exploreOptions) { o.cache = c }
}

// WithExploreProgress registers a callback invoked once per evaluated
// candidate. Callbacks are serialized but arrive in completion order
// within a batch.
func WithExploreProgress(fn func(ExploreProgress)) ExploreOption {
	return func(o *exploreOptions) { o.progress = fn }
}

// WithExploreTrace enables span tracing for every candidate evaluation,
// like WithTrace for Run: when dir is non-empty each candidate writes a
// Chrome trace-event JSON file there, named after its "axis=value,..."
// label. Big budgets produce one file per evaluated candidate — point the
// directory somewhere disposable.
func WithExploreTrace(dir string) ExploreOption {
	return func(o *exploreOptions) {
		o.traceOn = true
		o.traceDir = dir
	}
}

// FrontierPoint is one non-dominated design of a Frontier.
type FrontierPoint struct {
	// Name is the candidate label, "axis=value,..." in axis order.
	Name string
	// Config is the fully materialized configuration of the design.
	Config Config
	// AxisValues are the per-axis settings, in space-axis order.
	AxisValues []string
	// Objectives are the raw objective values, in objective order
	// (maximize objectives are not negated here).
	Objectives []float64
	// Result is the full simulation result of the design.
	Result *Result
	// Fidelity is the simulation tier that produced Objectives and Result.
	Fidelity Fidelity
	// ScreenError maps objective name to the measured relative error
	// |accurate − analytical| / max(|accurate|, ε) between this point's
	// analytical screen values and its promoted accurate values. Nil
	// unless the point went through screen-and-promote.
	ScreenError map[string]float64
}

// Frontier is the outcome of an exploration: the Pareto-optimal designs
// under the declared objectives, plus search accounting.
type Frontier struct {
	// AxisNames and ObjectiveNames give the column order of the points.
	AxisNames      []string
	ObjectiveNames []string
	// Points are the non-dominated designs, sorted by objective values
	// (minimization sense, then name) for deterministic output.
	Points []FrontierPoint
	// Strategy and Seed record how the search ran.
	Strategy string
	Seed     int64
	// Fidelity is the accurate tier of the search — the tier frontier
	// points were evaluated at (WithExploreFidelity, default EventDriven).
	Fidelity Fidelity
	// Evaluated counts candidates simulated at the accurate tier;
	// Infeasible counts candidates (at either tier) whose configuration
	// was rejected or whose simulation failed.
	Evaluated  int
	Infeasible int
	// Screened counts Analytical-tier screening evaluations (0 unless
	// screening was enabled); Promoted counts the screened candidates
	// promoted to the accurate tier.
	Screened int
	Promoted int
	// CacheStats aggregates layer-cache hits and misses across every
	// evaluation of the search.
	CacheStats RunCacheStats
}

// Canonical frontier file names.
const (
	FrontierCSVFile  = "FRONTIER.csv"
	FrontierJSONFile = "FRONTIER.json"
)

// CSVReport renders the frontier as FRONTIER.csv in the ReportSet style.
func (f *Frontier) CSVReport() *Report {
	rows := make([]report.FrontierRow, len(f.Points))
	for i, p := range f.Points {
		rows[i] = report.FrontierRow{Name: p.Name, AxisValues: p.AxisValues,
			Objectives: p.Objectives, Fidelity: p.Fidelity.String()}
	}
	return &Report{name: FrontierCSVFile, write: func(w io.Writer) error {
		return report.WriteFrontier(w, f.AxisNames, f.ObjectiveNames, rows)
	}}
}

// frontierJSON is the stable JSON shape of a frontier.
type frontierJSON struct {
	Strategy   string              `json:"strategy"`
	Seed       int64               `json:"seed"`
	Fidelity   string              `json:"fidelity"`
	Evaluated  int                 `json:"evaluated"`
	Infeasible int                 `json:"infeasible"`
	Screened   int                 `json:"screened,omitempty"`
	Promoted   int                 `json:"promoted,omitempty"`
	Axes       []string            `json:"axes"`
	Objectives []string            `json:"objectives"`
	Points     []frontierPointJSON `json:"points"`
}

type frontierPointJSON struct {
	Name        string             `json:"name"`
	Axes        []string           `json:"axes"`
	Objectives  []float64          `json:"objectives"`
	Fidelity    string             `json:"fidelity"`
	ScreenError map[string]float64 `json:"screen_error,omitempty"`
}

// JSONReport renders the frontier as FRONTIER.json.
func (f *Frontier) JSONReport() *Report {
	return &Report{name: FrontierJSONFile, write: func(w io.Writer) error {
		out := frontierJSON{
			Strategy:   f.Strategy,
			Seed:       f.Seed,
			Fidelity:   f.Fidelity.String(),
			Evaluated:  f.Evaluated,
			Infeasible: f.Infeasible,
			Screened:   f.Screened,
			Promoted:   f.Promoted,
			Axes:       f.AxisNames,
			Objectives: f.ObjectiveNames,
			Points:     make([]frontierPointJSON, len(f.Points)),
		}
		for i, p := range f.Points {
			out.Points[i] = frontierPointJSON{Name: p.Name, Axes: p.AxisValues,
				Objectives: p.Objectives, Fidelity: p.Fidelity.String(), ScreenError: p.ScreenError}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}}
}

// WriteAll writes FRONTIER.csv and FRONTIER.json into dir, creating it if
// needed.
func (f *Frontier) WriteAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range []*Report{f.CSVReport(), f.JSONReport()} {
		w, err := os.Create(filepath.Join(dir, r.Filename()))
		if err != nil {
			return err
		}
		_, werr := r.WriteTo(w)
		if cerr := w.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// evaluation records one feasible candidate's outcome during a search.
type evaluation struct {
	label     string
	cand      Candidate // copy of the candidate, for promotion re-apply
	cfg       Config
	values    []string  // per-axis settings, in axis order
	raw       []float64 // objective values as reported
	keys      []float64 // minimization-sense keys for dominance
	result    *Result
	fidelity  Fidelity
	screenErr map[string]float64 // analytical-vs-accurate error, promoted points only
}

// explorer bundles the state shared by the search and promotion phases.
type explorer struct {
	base    Config
	topo    *Topology
	space   Space
	o       *exploreOptions
	f       *Frontier
	infKeys []float64
}

// searchOutcome is the accounting of one strategy-driven search phase.
type searchOutcome struct {
	evals      []evaluation
	evaluated  int // candidates asked of the strategy, including infeasible
	infeasible int
	gens       int
}

// Explore searches the design space spanned by space around the base
// configuration, simulating candidates on topo in Sweep batches that share
// one layer-result cache (so neighboring candidates re-simulate only
// changed layers), and returns the exact Pareto frontier under the
// declared objectives.
//
// The search is budget-bounded (WithExploreBudget) and cancellable: on
// context cancellation Explore returns the frontier of the batches that
// completed together with the context's error. Candidates whose
// configuration fails validation or whose simulation errors are counted as
// infeasible and excluded from the frontier — adaptive strategies steer
// away from them. For a fixed seed the result is byte-identical through
// the CSV/JSON writers at any parallelism.
//
// With WithPromoteTopK or WithPromoteMargin the search runs in two phases:
// the strategy first spends the whole budget at the Analytical tier
// (closed forms, no replay), then the analytical Pareto front plus the
// top-K and margin-qualified candidates are promoted to the accurate tier
// (WithExploreFidelity) and the frontier is computed from the accurate
// results alone, each promoted point carrying its measured
// analytical-vs-accurate error.
func Explore(ctx context.Context, base Config, topo *Topology, space Space, opts ...ExploreOption) (*Frontier, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := exploreOptions{
		objectives: []Objective{CyclesObjective()},
		strategy:   AutoSearch,
		budget:     256,
		batch:      8,
		seed:       1,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if !o.fidelity.Valid() {
		return nil, fmt.Errorf("scalesim: invalid explore fidelity %d", int(o.fidelity))
	}
	seen := make(map[string]bool, len(o.objectives))
	for _, obj := range o.objectives {
		if obj.Name == "" || obj.Fn == nil {
			return nil, fmt.Errorf("scalesim: objective with empty name or nil Fn")
		}
		if seen[obj.Name] {
			return nil, fmt.Errorf("scalesim: duplicate objective %q", obj.Name)
		}
		seen[obj.Name] = true
	}
	strat := o.searcher
	if strat == nil {
		var err error
		strat, err = explore.NewStrategy(string(o.strategy), space, o.seed, o.budget)
		if err != nil {
			return nil, err
		}
	}
	cache := o.cache
	if cache == nil {
		cache = NewCache(0, 0)
	}

	f := &Frontier{
		AxisNames: space.Names(),
		Strategy:  strat.Name(),
		Seed:      o.seed,
		Fidelity:  o.fidelity,
	}
	for _, obj := range o.objectives {
		f.ObjectiveNames = append(f.ObjectiveNames, obj.Name)
	}
	e := &explorer{base: base, topo: topo, space: space, o: &o, f: f}
	e.infKeys = make([]float64, len(o.objectives))
	for i := range e.infKeys {
		e.infKeys[i] = math.Inf(1)
	}

	if o.promoteTopK == 0 && o.promoteMargin == 0 {
		// Single-tier search: every evaluation at the accurate fidelity.
		out, err := e.search(ctx, strat, cache, o.fidelity, o.budget)
		f.Evaluated += out.evaluated
		f.Infeasible += out.infeasible
		finishFrontier(f, out.evals)
		return f, err
	}

	// Phase 1: screen the whole budget at the Analytical tier. Caching is
	// skipped — distinct candidates never share whole-layer fingerprints,
	// and at microseconds per closed-form evaluation the key hashing would
	// dominate the work.
	out, err := e.search(ctx, strat, nil, Analytical, o.budget)
	f.Screened = out.evaluated
	f.Infeasible += out.infeasible
	if err != nil {
		// Cancelled mid-screen: nothing reached the accurate tier.
		finishFrontier(f, nil)
		return f, err
	}
	// Phase 2: promote the frontier-adjacent candidates.
	accurate, err := e.promote(ctx, cache, out.evals, out.gens)
	finishFrontier(f, accurate)
	return f, err
}

// search runs the strategy ask/tell loop, evaluating batches at fidelity
// fid via Sweep, until budget evaluations are spent or the space is
// exhausted. Cache may be nil (uncached). Cache statistics accumulate into
// the frontier; evaluation/infeasibility counts are returned for the
// caller to attribute to the right phase.
func (e *explorer) search(ctx context.Context, strat Searcher, cache *Cache, fid Fidelity, budget int) (searchOutcome, error) {
	o, f := e.o, e.f
	var out searchOutcome
	for gen := 1; out.evaluated < budget; gen++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out.gens = gen
		n := budget - out.evaluated
		if n > o.batch {
			n = o.batch
		}
		cands := strat.Ask(n)
		if len(cands) == 0 {
			break // space exhausted
		}
		batchBase := out.evaluated
		keys := make([][]float64, len(cands))

		// Materialize candidates; workload-axis failures are infeasible
		// without simulating.
		pts := make([]SweepPoint, 0, len(cands))
		ptCand := make([]int, 0, len(cands)) // sweep point -> candidate index
		labels := make([]string, len(cands))
		cfgs := make([]Config, len(cands))
		preFailed := 0
		for i, c := range cands {
			labels[i] = e.space.Label(c)
			cfgs[i] = e.space.Apply(e.base, c)
			cfgs[i].RunName = labels[i]
			pt, err := e.space.ApplyTopology(e.topo, c)
			if err != nil {
				keys[i] = e.infKeys
				out.infeasible++
				preFailed++
				if o.progress != nil {
					o.progress(ExploreProgress{Generation: gen, Evaluated: batchBase + preFailed,
						Budget: budget, Point: labels[i], Fidelity: fid, Err: err})
				}
				continue
			}
			pts = append(pts, SweepPoint{Name: labels[i], Config: cfgs[i], Topology: pt})
			ptCand = append(ptCand, i)
		}

		sweepOpts := []Option{WithParallelism(o.parallelism), WithCache(cache), WithFidelity(fid)}
		if o.traceOn {
			sweepOpts = append(sweepOpts, WithTrace(o.traceDir))
		}
		if o.progress != nil {
			evalBase, fn, g := batchBase+preFailed, o.progress, gen
			sweepOpts = append(sweepOpts, WithSweepProgress(func(p SweepPointProgress) {
				fn(ExploreProgress{Generation: g, Evaluated: evalBase + p.Done,
					Budget: budget, Point: p.Point, Fidelity: fid, Err: p.Err})
			}))
		}
		results, err := Sweep(ctx, pts, sweepOpts...)
		if err != nil {
			// Cancelled mid-batch: the batch is discarded so the partial
			// frontier stays deterministic.
			return out, err
		}
		for pi, sr := range results {
			ci := ptCand[pi]
			if sr.Err != nil {
				keys[ci] = e.infKeys
				out.infeasible++
				continue
			}
			f.CacheStats.Hits += sr.Result.CacheStats.Hits
			f.CacheStats.Misses += sr.Result.CacheStats.Misses
			raw, k, feasible := e.score(sr.Result)
			if !feasible {
				keys[ci] = e.infKeys
				out.infeasible++
				continue
			}
			keys[ci] = k
			out.evals = append(out.evals, evaluation{
				label: sr.Point.Name, cand: append(Candidate(nil), cands[ci]...),
				cfg: cfgs[ci], values: e.space.Values(cands[ci]),
				raw: raw, keys: k, result: sr.Result, fidelity: fid,
			})
		}
		strat.Tell(cands, keys)
		out.evaluated += len(cands)
	}
	return out, nil
}

// score extracts the raw objective values and minimization-sense keys from
// a result; feasible is false when any objective is NaN.
func (e *explorer) score(r *Result) (raw, keys []float64, feasible bool) {
	objs := e.o.objectives
	raw = make([]float64, len(objs))
	keys = make([]float64, len(objs))
	for oi, obj := range objs {
		v := obj.Fn(r)
		raw[oi] = v
		if math.IsNaN(v) {
			return raw, keys, false
		}
		if obj.Maximize {
			v = -v
		}
		keys[oi] = v
	}
	return raw, keys, true
}

// promote selects the frontier-adjacent subset of the analytical screen —
// the exact analytical Pareto front, the PromoteTopK best candidates by
// lexicographic key rank, and every candidate within PromoteMargin of the
// front — and re-evaluates it at the accurate tier through one cached
// Sweep. Each returned evaluation carries the measured per-objective
// analytical-vs-accurate relative error.
func (e *explorer) promote(ctx context.Context, cache *Cache, screened []evaluation, screenGens int) ([]evaluation, error) {
	o, f := e.o, e.f
	if len(screened) == 0 {
		return nil, nil
	}
	vecs := make([][]float64, len(screened))
	for i := range screened {
		vecs[i] = screened[i].keys
	}
	front := explore.Front(vecs)
	chosen := make(map[int]bool, len(front))
	for _, i := range front {
		chosen[i] = true
	}
	if k := o.promoteTopK; k > 0 {
		// Rank every screened candidate by minimization keys, ties by
		// label, and take the K best.
		rank := make([]int, len(screened))
		for i := range rank {
			rank[i] = i
		}
		sort.SliceStable(rank, func(a, b int) bool {
			return lessEval(&screened[rank[a]], &screened[rank[b]])
		})
		if k > len(rank) {
			k = len(rank)
		}
		for _, i := range rank[:k] {
			chosen[i] = true
		}
	}
	if m := o.promoteMargin; m > 0 {
		// A candidate within relative margin m of the front survives
		// dominance after shrinking each key toward the ideal by m·|key|.
		shifted := make([]float64, len(e.o.objectives))
		for i, v := range vecs {
			if chosen[i] {
				continue
			}
			for j, k := range v {
				shifted[j] = k - m*math.Abs(k)
			}
			near := true
			for _, fi := range front {
				if explore.Dominates(vecs[fi], shifted) {
					near = false
					break
				}
			}
			if near {
				chosen[i] = true
			}
		}
	}
	// Deterministic promotion order: screen-evaluation order.
	promoted := make([]int, 0, len(chosen))
	for i := range screened {
		if chosen[i] {
			promoted = append(promoted, i)
		}
	}
	f.Promoted = len(promoted)
	f.Evaluated += len(promoted)

	pts := make([]SweepPoint, len(promoted))
	for pi, i := range promoted {
		sc := &screened[i]
		pt, err := e.space.ApplyTopology(e.topo, sc.cand)
		if err != nil {
			// The same candidate materialized during the screen; a failure
			// here means the topology axis is nondeterministic.
			return nil, fmt.Errorf("scalesim: promotion re-apply of %q failed: %w", sc.label, err)
		}
		pts[pi] = SweepPoint{Name: sc.label, Config: sc.cfg, Topology: pt}
	}
	sweepOpts := []Option{WithParallelism(o.parallelism), WithCache(cache), WithFidelity(o.fidelity)}
	if o.traceOn {
		sweepOpts = append(sweepOpts, WithTrace(o.traceDir))
	}
	if o.progress != nil {
		fn, g, total := o.progress, screenGens+1, len(pts)
		sweepOpts = append(sweepOpts, WithSweepProgress(func(p SweepPointProgress) {
			fn(ExploreProgress{Generation: g, Evaluated: p.Done,
				Budget: total, Point: p.Point, Fidelity: o.fidelity, Err: p.Err})
		}))
	}
	results, err := Sweep(ctx, pts, sweepOpts...)
	if err != nil {
		// Cancelled mid-promotion: discard the batch, deterministically.
		return nil, err
	}
	evals := make([]evaluation, 0, len(results))
	for pi, sr := range results {
		sc := &screened[promoted[pi]]
		if sr.Err != nil {
			f.Infeasible++
			continue
		}
		f.CacheStats.Hits += sr.Result.CacheStats.Hits
		f.CacheStats.Misses += sr.Result.CacheStats.Misses
		raw, k, feasible := e.score(sr.Result)
		if !feasible {
			f.Infeasible++
			continue
		}
		screenErr := make(map[string]float64, len(o.objectives))
		for oi, obj := range o.objectives {
			screenErr[obj.Name] = relError(raw[oi], sc.raw[oi])
		}
		evals = append(evals, evaluation{
			label: sc.label, cand: sc.cand, cfg: sc.cfg, values: sc.values,
			raw: raw, keys: k, result: sr.Result,
			fidelity: o.fidelity, screenErr: screenErr,
		})
	}
	return evals, nil
}

// relError is |accurate − analytical| normalized by |accurate|, guarding
// the accurate-is-zero case (then any nonzero analytical value is an
// error of 1).
func relError(accurate, analytical float64) float64 {
	if accurate == analytical {
		return 0
	}
	denom := math.Abs(accurate)
	if denom == 0 {
		return 1
	}
	return math.Abs(accurate-analytical) / denom
}

// lessEval orders evaluations by minimization-sense keys, ties by label —
// the deterministic order of frontier output and top-K ranking.
func lessEval(a, b *evaluation) bool {
	for k := range a.keys {
		if a.keys[k] != b.keys[k] {
			return a.keys[k] < b.keys[k]
		}
	}
	return a.label < b.label
}

// finishFrontier extracts the exact Pareto set from the feasible
// evaluations, prunes dominated points and sorts the survivors (by
// minimization-sense objective keys, then name) for deterministic output.
func finishFrontier(f *Frontier, evals []evaluation) {
	vecs := make([][]float64, len(evals))
	for i := range evals {
		vecs[i] = evals[i].keys
	}
	front := explore.Front(vecs)
	sort.SliceStable(front, func(a, b int) bool {
		return lessEval(&evals[front[a]], &evals[front[b]])
	})
	f.Points = f.Points[:0]
	for _, i := range front {
		e := &evals[i]
		f.Points = append(f.Points, FrontierPoint{
			Name:        e.label,
			Config:      e.cfg,
			AxisValues:  e.values,
			Objectives:  e.raw,
			Result:      e.result,
			Fidelity:    e.fidelity,
			ScreenError: e.screenErr,
		})
	}
}

func splitCommaList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.ToLower(strings.TrimSpace(part)); p != "" {
			out = append(out, p)
		}
	}
	return out
}
