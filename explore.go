package scalesim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"scalesim/internal/explore"
	"scalesim/internal/report"
)

// Design-space exploration: declare a parameter Space over Config knobs,
// one or more Objectives over run results, and a search strategy; Explore
// funnels candidates through Sweep batches sharing one layer-result cache
// and returns the exact multi-objective Pareto frontier.
//
//	space, _ := scalesim.ParseSpace("array=16..128:pow2; dataflow=os,ws,is")
//	frontier, err := scalesim.Explore(ctx, scalesim.DefaultConfig(), topo, space,
//		scalesim.WithObjectives(scalesim.CyclesObjective(), scalesim.EnergyObjective()),
//		scalesim.WithEvalBudget(64), scalesim.WithSeed(1))
//	frontier.WriteAll("out") // FRONTIER.csv + FRONTIER.json
//
// Exploration is deterministic: a fixed seed yields a byte-identical
// frontier at any parallelism.

// Re-exported exploration types, so callers need only this package.
type (
	// Axis is one dimension of a design space. Build axes with
	// IntRangeAxis, Pow2Axis, EnumAxis or ParseAxis.
	Axis = explore.Axis
	// Space is an ordered list of axes spanning the design space.
	Space = explore.Space
	// Candidate selects one setting per space axis, by value index.
	Candidate = explore.Candidate
	// Searcher generates candidates through an ask/tell loop. The
	// built-in strategies are selected with WithSearchStrategy; a custom
	// implementation can be injected with WithSearcher.
	Searcher = explore.Strategy
)

// IntRangeAxis returns an integer axis enumerating lo, lo+step, ..., ≤ hi;
// apply writes the chosen value into the candidate configuration.
func IntRangeAxis(name string, lo, hi, step int, apply func(*Config, int)) (Axis, error) {
	return explore.IntRange(name, lo, hi, step, apply)
}

// Pow2Axis returns an integer axis enumerating the powers of two in
// [lo, hi].
func Pow2Axis(name string, lo, hi int, apply func(*Config, int)) (Axis, error) {
	return explore.Pow2(name, lo, hi, apply)
}

// EnumAxis returns an axis over an explicit list of string settings.
func EnumAxis(name string, values []string, apply func(*Config, string)) (Axis, error) {
	return explore.Enum(name, values, apply)
}

// ParseAxis parses one "knob=domain" axis spec over the registered
// configuration knobs — "array=8..128:pow2", "dataflow=os,ws",
// "channels=1..8:pow2", "dram_tech=DDR4,HBM2", "sparsity=dense,2:4" — see
// KnownAxisNames for the knob registry.
func ParseAxis(spec string) (Axis, error) { return explore.ParseAxis(spec) }

// ParseSpace parses a semicolon-separated list of axis specs.
func ParseSpace(spec string) (Space, error) { return explore.ParseSpace(spec) }

// KnownAxisNames lists the configuration knobs ParseAxis understands.
func KnownAxisNames() []string { return explore.KnownAxisNames() }

// Objective is one scalar exploration metric extracted from a Result.
// Objectives are minimized unless Maximize is set; the frontier reports
// raw values either way.
type Objective struct {
	// Name labels the objective in FRONTIER.csv and progress output.
	Name string
	// Maximize flips the sense for dominance comparisons.
	Maximize bool
	// Fn extracts the metric from a finished run.
	Fn func(*Result) float64
}

// CyclesObjective minimizes total runtime cycles (with stalls).
func CyclesObjective() Objective {
	return Objective{Name: "cycles", Fn: func(r *Result) float64 { return float64(r.TotalCycles()) }}
}

// EnergyObjective minimizes total energy in mJ. It reads 0 unless energy
// modeling is enabled in the candidate configurations.
func EnergyObjective() Objective {
	return Objective{Name: "energy_mj", Fn: func(r *Result) float64 { return r.TotalEnergyMJ() }}
}

// EDPObjective minimizes the energy-delay product (cycle·mJ), the paper's
// Table V metric. Requires energy modeling, like EnergyObjective.
func EDPObjective() Objective {
	return Objective{Name: "edp", Fn: func(r *Result) float64 { return r.Summary().EDP }}
}

// DRAMTrafficObjective minimizes main-memory traffic in bytes.
func DRAMTrafficObjective() Objective {
	return Objective{Name: "dram_bytes", Fn: func(r *Result) float64 { return float64(r.Summary().TotalDRAMBytes) }}
}

// UtilizationObjective maximizes the compute-cycle-weighted mean PE
// utilization.
func UtilizationObjective() Objective {
	return Objective{Name: "utilization", Maximize: true,
		Fn: func(r *Result) float64 { return r.Summary().AvgUtilization }}
}

// ParseObjectives parses a comma-separated objective list ("cycles",
// "energy", "edp", "dram", "utilization") for the CLI.
func ParseObjectives(s string) ([]Objective, error) {
	var out []Objective
	for _, name := range splitCommaList(s) {
		switch name {
		case "cycles":
			out = append(out, CyclesObjective())
		case "energy", "energy_mj":
			out = append(out, EnergyObjective())
		case "edp":
			out = append(out, EDPObjective())
		case "dram", "dram_bytes":
			out = append(out, DRAMTrafficObjective())
		case "utilization", "util":
			out = append(out, UtilizationObjective())
		default:
			return nil, fmt.Errorf("scalesim: unknown objective %q (valid: cycles, energy, edp, dram, utilization)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scalesim: empty objective list")
	}
	return out, nil
}

// SearchStrategy names a built-in candidate-generation strategy.
type SearchStrategy string

const (
	// GridSearch enumerates the whole space exhaustively.
	GridSearch SearchStrategy = "grid"
	// RandomSearch draws seeded uniform samples without replacement.
	RandomSearch SearchStrategy = "random"
	// EvolutionSearch mutates the current Pareto set, topped up with
	// random samples — adaptive hill climbing toward the frontier.
	EvolutionSearch SearchStrategy = "evolve"
	// AutoSearch picks GridSearch when the space fits in the evaluation
	// budget and RandomSearch otherwise. The default.
	AutoSearch SearchStrategy = "auto"
)

// ExploreProgress reports one evaluated candidate to a WithExploreProgress
// callback.
type ExploreProgress struct {
	Generation int    // 1-based batch number
	Evaluated  int    // candidates finished so far, including this one
	Budget     int    // maximum evaluations for the search
	Point      string // candidate label ("array=32,dataflow=ws")
	Err        error  // non-nil when the candidate was infeasible
}

// exploreOptions collects the Explore tunables.
type exploreOptions struct {
	objectives  []Objective
	strategy    SearchStrategy
	searcher    Searcher
	budget      int
	batch       int
	seed        int64
	parallelism int
	cache       *Cache
	progress    func(ExploreProgress)
	traceOn     bool
	traceDir    string
}

// ExploreOption configures one Explore call.
type ExploreOption func(*exploreOptions)

// WithObjectives sets the exploration objectives (default: CyclesObjective
// alone). Objective names must be unique.
func WithObjectives(objs ...Objective) ExploreOption {
	return func(o *exploreOptions) {
		if len(objs) > 0 {
			o.objectives = objs
		}
	}
}

// WithSearchStrategy selects a built-in search strategy (default
// AutoSearch).
func WithSearchStrategy(s SearchStrategy) ExploreOption {
	return func(o *exploreOptions) { o.strategy = s }
}

// WithSearcher injects a custom candidate-generation strategy, overriding
// WithSearchStrategy.
func WithSearcher(s Searcher) ExploreOption {
	return func(o *exploreOptions) { o.searcher = s }
}

// WithEvalBudget bounds the search to at most n candidate evaluations
// (default 256). Infeasible candidates count: the budget bounds simulation
// work, not frontier size.
func WithEvalBudget(n int) ExploreOption {
	return func(o *exploreOptions) {
		if n > 0 {
			o.budget = n
		}
	}
}

// WithBatchSize sets how many candidates are evaluated per Sweep batch —
// the generation size of adaptive strategies (default 8).
func WithBatchSize(n int) ExploreOption {
	return func(o *exploreOptions) {
		if n > 0 {
			o.batch = n
		}
	}
}

// WithSeed seeds the stochastic strategies (default 1). A fixed seed makes
// the whole exploration deterministic at any parallelism.
func WithSeed(seed int64) ExploreOption {
	return func(o *exploreOptions) { o.seed = seed }
}

// WithExploreParallelism bounds the worker pool each evaluation batch runs
// on (default GOMAXPROCS), like WithParallelism for Sweep.
func WithExploreParallelism(n int) ExploreOption {
	return func(o *exploreOptions) { o.parallelism = n }
}

// WithExploreCache shares an existing layer-result cache with the search.
// By default every Explore call creates a private cache with default
// bounds; passing one in lets repeated explorations (or surrounding Run
// and Sweep calls) reuse each other's simulations.
func WithExploreCache(c *Cache) ExploreOption {
	return func(o *exploreOptions) { o.cache = c }
}

// WithExploreProgress registers a callback invoked once per evaluated
// candidate. Callbacks are serialized but arrive in completion order
// within a batch.
func WithExploreProgress(fn func(ExploreProgress)) ExploreOption {
	return func(o *exploreOptions) { o.progress = fn }
}

// WithExploreTrace enables span tracing for every candidate evaluation,
// like WithTrace for Run: when dir is non-empty each candidate writes a
// Chrome trace-event JSON file there, named after its "axis=value,..."
// label. Big budgets produce one file per evaluated candidate — point the
// directory somewhere disposable.
func WithExploreTrace(dir string) ExploreOption {
	return func(o *exploreOptions) {
		o.traceOn = true
		o.traceDir = dir
	}
}

// FrontierPoint is one non-dominated design of a Frontier.
type FrontierPoint struct {
	// Name is the candidate label, "axis=value,..." in axis order.
	Name string
	// Config is the fully materialized configuration of the design.
	Config Config
	// AxisValues are the per-axis settings, in space-axis order.
	AxisValues []string
	// Objectives are the raw objective values, in objective order
	// (maximize objectives are not negated here).
	Objectives []float64
	// Result is the full simulation result of the design.
	Result *Result
}

// Frontier is the outcome of an exploration: the Pareto-optimal designs
// under the declared objectives, plus search accounting.
type Frontier struct {
	// AxisNames and ObjectiveNames give the column order of the points.
	AxisNames      []string
	ObjectiveNames []string
	// Points are the non-dominated designs, sorted by objective values
	// (minimization sense, then name) for deterministic output.
	Points []FrontierPoint
	// Strategy and Seed record how the search ran.
	Strategy string
	Seed     int64
	// Evaluated counts simulated candidates; Infeasible counts the subset
	// whose configuration was rejected or whose simulation failed.
	Evaluated  int
	Infeasible int
	// CacheStats aggregates layer-cache hits and misses across every
	// evaluation of the search.
	CacheStats RunCacheStats
}

// Canonical frontier file names.
const (
	FrontierCSVFile  = "FRONTIER.csv"
	FrontierJSONFile = "FRONTIER.json"
)

// CSVReport renders the frontier as FRONTIER.csv in the ReportSet style.
func (f *Frontier) CSVReport() *Report {
	rows := make([]report.FrontierRow, len(f.Points))
	for i, p := range f.Points {
		rows[i] = report.FrontierRow{Name: p.Name, AxisValues: p.AxisValues, Objectives: p.Objectives}
	}
	return &Report{name: FrontierCSVFile, write: func(w io.Writer) error {
		return report.WriteFrontier(w, f.AxisNames, f.ObjectiveNames, rows)
	}}
}

// frontierJSON is the stable JSON shape of a frontier.
type frontierJSON struct {
	Strategy   string              `json:"strategy"`
	Seed       int64               `json:"seed"`
	Evaluated  int                 `json:"evaluated"`
	Infeasible int                 `json:"infeasible"`
	Axes       []string            `json:"axes"`
	Objectives []string            `json:"objectives"`
	Points     []frontierPointJSON `json:"points"`
}

type frontierPointJSON struct {
	Name       string    `json:"name"`
	Axes       []string  `json:"axes"`
	Objectives []float64 `json:"objectives"`
}

// JSONReport renders the frontier as FRONTIER.json.
func (f *Frontier) JSONReport() *Report {
	return &Report{name: FrontierJSONFile, write: func(w io.Writer) error {
		out := frontierJSON{
			Strategy:   f.Strategy,
			Seed:       f.Seed,
			Evaluated:  f.Evaluated,
			Infeasible: f.Infeasible,
			Axes:       f.AxisNames,
			Objectives: f.ObjectiveNames,
			Points:     make([]frontierPointJSON, len(f.Points)),
		}
		for i, p := range f.Points {
			out.Points[i] = frontierPointJSON{Name: p.Name, Axes: p.AxisValues, Objectives: p.Objectives}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}}
}

// WriteAll writes FRONTIER.csv and FRONTIER.json into dir, creating it if
// needed.
func (f *Frontier) WriteAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range []*Report{f.CSVReport(), f.JSONReport()} {
		w, err := os.Create(filepath.Join(dir, r.Filename()))
		if err != nil {
			return err
		}
		_, werr := r.WriteTo(w)
		if cerr := w.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// evaluation records one feasible candidate's outcome during a search.
type evaluation struct {
	label  string
	cfg    Config
	values []string  // per-axis settings, in axis order
	raw    []float64 // objective values as reported
	keys   []float64 // minimization-sense keys for dominance
	result *Result
}

// Explore searches the design space spanned by space around the base
// configuration, simulating candidates on topo in Sweep batches that share
// one layer-result cache (so neighboring candidates re-simulate only
// changed layers), and returns the exact Pareto frontier under the
// declared objectives.
//
// The search is budget-bounded (WithEvalBudget) and cancellable: on
// context cancellation Explore returns the frontier of the batches that
// completed together with the context's error. Candidates whose
// configuration fails validation or whose simulation errors are counted as
// infeasible and excluded from the frontier — adaptive strategies steer
// away from them. For a fixed seed the result is byte-identical through
// the CSV/JSON writers at any parallelism.
func Explore(ctx context.Context, base Config, topo *Topology, space Space, opts ...ExploreOption) (*Frontier, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := exploreOptions{
		objectives: []Objective{CyclesObjective()},
		strategy:   AutoSearch,
		budget:     256,
		batch:      8,
		seed:       1,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if err := space.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(o.objectives))
	for _, obj := range o.objectives {
		if obj.Name == "" || obj.Fn == nil {
			return nil, fmt.Errorf("scalesim: objective with empty name or nil Fn")
		}
		if seen[obj.Name] {
			return nil, fmt.Errorf("scalesim: duplicate objective %q", obj.Name)
		}
		seen[obj.Name] = true
	}
	strat := o.searcher
	if strat == nil {
		var err error
		strat, err = explore.NewStrategy(string(o.strategy), space, o.seed, o.budget)
		if err != nil {
			return nil, err
		}
	}
	cache := o.cache
	if cache == nil {
		cache = NewCache(0, 0)
	}

	f := &Frontier{
		AxisNames: space.Names(),
		Strategy:  strat.Name(),
		Seed:      o.seed,
	}
	for _, obj := range o.objectives {
		f.ObjectiveNames = append(f.ObjectiveNames, obj.Name)
	}

	var evals []evaluation
	infKeys := make([]float64, len(o.objectives))
	for i := range infKeys {
		infKeys[i] = math.Inf(1)
	}
	for gen := 1; f.Evaluated < o.budget; gen++ {
		if err := ctx.Err(); err != nil {
			finishFrontier(f, evals)
			return f, err
		}
		n := o.budget - f.Evaluated
		if n > o.batch {
			n = o.batch
		}
		cands := strat.Ask(n)
		if len(cands) == 0 {
			break // space exhausted
		}
		batchBase := f.Evaluated
		keys := make([][]float64, len(cands))

		// Materialize candidates; workload-axis failures are infeasible
		// without simulating.
		pts := make([]SweepPoint, 0, len(cands))
		ptCand := make([]int, 0, len(cands)) // sweep point -> candidate index
		labels := make([]string, len(cands))
		cfgs := make([]Config, len(cands))
		preFailed := 0
		for i, c := range cands {
			labels[i] = space.Label(c)
			cfgs[i] = space.Apply(base, c)
			cfgs[i].RunName = labels[i]
			pt, err := space.ApplyTopology(topo, c)
			if err != nil {
				keys[i] = infKeys
				f.Infeasible++
				preFailed++
				if o.progress != nil {
					o.progress(ExploreProgress{Generation: gen, Evaluated: batchBase + preFailed,
						Budget: o.budget, Point: labels[i], Err: err})
				}
				continue
			}
			pts = append(pts, SweepPoint{Name: labels[i], Config: cfgs[i], Topology: pt})
			ptCand = append(ptCand, i)
		}

		sweepOpts := []Option{WithParallelism(o.parallelism), WithCache(cache)}
		if o.traceOn {
			sweepOpts = append(sweepOpts, WithTrace(o.traceDir))
		}
		if o.progress != nil {
			evalBase, fn, g := batchBase+preFailed, o.progress, gen
			sweepOpts = append(sweepOpts, WithSweepProgress(func(p SweepPointProgress) {
				fn(ExploreProgress{Generation: g, Evaluated: evalBase + p.Done,
					Budget: o.budget, Point: p.Point, Err: p.Err})
			}))
		}
		results, err := Sweep(ctx, pts, sweepOpts...)
		if err != nil {
			// Cancelled mid-batch: the batch is discarded so the partial
			// frontier stays deterministic.
			finishFrontier(f, evals)
			return f, err
		}
		for pi, sr := range results {
			ci := ptCand[pi]
			if sr.Err != nil {
				keys[ci] = infKeys
				f.Infeasible++
				continue
			}
			f.CacheStats.Hits += sr.Result.CacheStats.Hits
			f.CacheStats.Misses += sr.Result.CacheStats.Misses
			raw := make([]float64, len(o.objectives))
			k := make([]float64, len(o.objectives))
			feasible := true
			for oi, obj := range o.objectives {
				v := obj.Fn(sr.Result)
				raw[oi] = v
				if math.IsNaN(v) {
					feasible = false
					break
				}
				if obj.Maximize {
					v = -v
				}
				k[oi] = v
			}
			if !feasible {
				keys[ci] = infKeys
				f.Infeasible++
				continue
			}
			keys[ci] = k
			evals = append(evals, evaluation{
				label: sr.Point.Name, cfg: cfgs[ci], values: space.Values(cands[ci]),
				raw: raw, keys: k, result: sr.Result,
			})
		}
		strat.Tell(cands, keys)
		f.Evaluated += len(cands)
	}
	finishFrontier(f, evals)
	return f, nil
}

// finishFrontier extracts the exact Pareto set from the feasible
// evaluations, prunes dominated points and sorts the survivors (by
// minimization-sense objective keys, then name) for deterministic output.
func finishFrontier(f *Frontier, evals []evaluation) {
	vecs := make([][]float64, len(evals))
	for i := range evals {
		vecs[i] = evals[i].keys
	}
	front := explore.ParetoIndices(vecs)
	sort.SliceStable(front, func(a, b int) bool {
		ea, eb := &evals[front[a]], &evals[front[b]]
		for k := range ea.keys {
			if ea.keys[k] != eb.keys[k] {
				return ea.keys[k] < eb.keys[k]
			}
		}
		return ea.label < eb.label
	})
	f.Points = f.Points[:0]
	for _, i := range front {
		e := &evals[i]
		f.Points = append(f.Points, FrontierPoint{
			Name:       e.label,
			Config:     e.cfg,
			AxisValues: e.values,
			Objectives: e.raw,
			Result:     e.result,
		})
	}
}

func splitCommaList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.ToLower(strings.TrimSpace(part)); p != "" {
			out = append(out, p)
		}
	}
	return out
}
