package scalesim

import (
	"context"
	"sync"
	"sync/atomic"

	"scalesim/internal/diskstore"
	"scalesim/internal/energy"
	"scalesim/internal/simcache"
)

// CacheStats is a point-in-time snapshot of a Cache: hit/miss/eviction
// counters since construction (or Purge) and current occupancy.
type CacheStats = simcache.Stats

// Cache is a content-addressed, bounded LRU cache of layer simulation
// results, shared across Run, Sweep and WriteTraces calls.
//
// Every (configuration, stage pipeline, layer shape) triple is
// fingerprinted; when two layers agree on all three — whether within one
// topology (ResNet-style repeated blocks), across runs, or across sweep
// points — the second simulation is skipped and a deep copy of the cached
// LayerResult is returned. Layer names are deliberately excluded from the
// fingerprint (they label reports, they do not change the simulation), so
// repeated-shape topologies simulate each distinct shape once.
//
// Beyond whole layers, the cache also memoizes sub-results whose inputs
// are a subset of the configuration: the data-layout (bank conflict)
// analysis, which depends only on the layout section and the layer shape,
// and trace blobs emitted by WriteTraces. A sweep that varies only DRAM or
// energy knobs therefore still reuses the expensive systolic demand
// analysis of unchanged layers even though the whole-layer fingerprints
// differ.
//
// A Cache is safe for concurrent use: one cache may back many simultaneous
// Run and Sweep calls. Cached values are deep-copied on insertion and on
// every hit, so callers may freely mutate results.
type Cache struct {
	c *simcache.Cache

	// storeMu guards the optional persistent second tier (AttachStore).
	storeMu  sync.Mutex
	store    *diskstore.Store
	storeDir string
	// storeDegraded is set when the degradation ladder detached a dying
	// store mid-serve (see Cache.degradeStore); readable without storeMu so
	// metrics can poll it from the serve loop.
	storeDegraded atomic.Bool
}

// NewCache returns an empty cache bounded to at most maxEntries cached
// results and approximately maxBytes of accounted result memory.
// Non-positive limits select the defaults (4096 entries, 256 MiB).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{c: simcache.New(maxEntries, maxBytes)}
}

// Stats snapshots the cache's cumulative counters and current occupancy.
func (c *Cache) Stats() CacheStats { return c.c.Stats() }

// Purge empties the cache and resets its statistics.
func (c *Cache) Purge() { c.c.Purge() }

var (
	sharedCacheOnce sync.Once
	sharedCache     *Cache
)

// SharedCache returns the process-wide cache used by WithSharedCache,
// created with default bounds on first use. Independent subsystems that
// simulate overlapping configurations share hits through it.
func SharedCache() *Cache {
	sharedCacheOnce.Do(func() { sharedCache = NewCache(0, 0) })
	return sharedCache
}

// RunCacheStats reports the layer cache's effectiveness for one Run: how
// many layers were served from the cache and how many were simulated.
// Sub-result hits (layout analysis, trace blobs) are not counted here;
// they appear in Cache.Stats.
type RunCacheStats struct {
	// Hits is the number of layers served from the cache.
	Hits int64
	// Misses is the number of layers simulated (and then cached).
	Misses int64
}

// layerCache is the per-run caching handle: the shared cache plus the
// fingerprint of everything that is constant across the run's layers
// (configuration, energy table, stage pipeline) and per-run hit counters.
// Single-flight coalescing lives in the shared cache itself, so identical
// shapes are computed once even across concurrent runs and sweep points.
type layerCache struct {
	cache        *simcache.Cache
	base         simcache.Key
	hits, misses atomic.Int64
	// memRow records whether this run's pipeline fills LayerResult.Memory
	// (memory stage present and model enabled). Cached memory rows are
	// relabeled with the hitting layer's name based on this, not on the
	// cached row's own name, which is empty when the populating layer was
	// anonymous.
	memRow bool
}

// newLayerCache builds the per-run handle, or returns nil when caching is
// off or the stage pipeline contains a stage without a CacheFingerprint
// (an unknown stage could depend on anything, so whole-layer reuse would
// be unsound).
func newLayerCache(c *Cache, cfg *Config, o *options) *layerCache {
	if c == nil {
		return nil
	}
	h := simcache.NewHasher()
	// v2: the simulation fidelity joined the fingerprint — an Analytical
	// result must never answer an EventDriven or CycleAccurate request
	// (and vice versa), within a process or across the persistent store.
	h.String("scalesim/layer/v2")
	h.Value(fingerprintConfig(cfg))
	h.Int(int64(o.fidelity))
	h.Value(o.ert)
	memRow := false
	for _, st := range o.stages {
		f, ok := st.(StageFingerprinter)
		if !ok {
			return nil
		}
		h.String(f.CacheFingerprint())
		if _, ok := st.(memoryStage); ok && cfg.Memory.Enabled {
			memRow = true
		}
	}
	return &layerCache{cache: c.c, base: h.Sum(), memRow: memRow}
}

// fingerprintConfig returns the configuration as hashed into cache keys:
// everything except RunName, which labels reports and trace files but
// never changes simulation results. Every other field — array shape, SRAM
// sizes, dataflow, bandwidth, word size and the sparsity, memory, layout,
// energy and multi-core sections — is fingerprinted, so sweep points that
// differ in any of them can never share an entry.
func fingerprintConfig(cfg *Config) Config {
	cc := *cfg
	cc.RunName = ""
	return cc
}

// key fingerprints one layer on top of the run-constant base. The name is
// excluded: two layers differing only in name are the same simulation.
func (lc *layerCache) key(l *Layer) simcache.Key {
	h := simcache.NewHasher()
	h.Bytes(lc.base[:])
	ll := *l
	ll.Name = ""
	h.Value(ll)
	return h.Sum()
}

// lookup returns a hit (deep-copied and relabeled for l), a context error
// (the caller was cancelled while coalesced behind another computer), or
// (nil, nil) after registering the caller as the key's single-flight
// computer via Cache.Acquire. Concurrent same-shape layers — in this run
// or any other run sharing the cache — coalesce: whoever registers first
// simulates while the others block and then take the hit, so within a run
// hit/miss counts are deterministic at any parallelism and a shape is
// never simulated twice. A caller that receives (nil, nil) MUST call
// done(key) when finished (whether or not it stored a result).
func (lc *layerCache) lookup(ctx context.Context, key simcache.Key, l *Layer) (*LayerResult, error) {
	v, ok, err := lc.cache.Acquire(ctx, key)
	if err != nil {
		return nil, err
	}
	if !ok {
		lc.misses.Add(1)
		return nil, nil
	}
	lc.hits.Add(1)
	lr := cloneLayerResult(v.(*LayerResult))
	// The cached entry carries the name of whichever layer produced it;
	// restore this layer's identity everywhere a name is recorded. The
	// memory row is relabeled whenever the memory model ran — its cached
	// name alone cannot distinguish "model off" from "populating layer
	// was anonymous".
	lr.Layer = *l
	if lr.Sparse != nil {
		lr.Sparse.LayerName = l.Name
	}
	if lc.memRow || lr.Memory.LayerName != "" {
		// The second clause covers custom fingerprinted stages that fill
		// the memory row themselves.
		lr.Memory.LayerName = l.Name
	}
	return lr, nil
}

// put stores a deep copy of lr so later caller mutations cannot corrupt
// the cache.
func (lc *layerCache) put(key simcache.Key, lr *LayerResult) {
	lc.cache.Put(key, cloneLayerResult(lr), layerResultSize(lr))
}

// done releases the single-flight slot taken by a nil lookup, waking any
// workers coalesced behind it.
func (lc *layerCache) done(key simcache.Key) {
	lc.cache.Release(key)
}

// stats returns this run's hit/miss counters.
func (lc *layerCache) stats() RunCacheStats {
	return RunCacheStats{Hits: lc.hits.Load(), Misses: lc.misses.Load()}
}

// cloneLayerResult deep-copies a layer result, including the pointered
// sparse row, energy report (with its component map) and partition.
func cloneLayerResult(lr *LayerResult) *LayerResult {
	out := *lr
	if lr.Sparse != nil {
		s := *lr.Sparse
		out.Sparse = &s
	}
	if lr.Partition != nil {
		p := *lr.Partition
		out.Partition = &p
	}
	if lr.Energy != nil {
		e := *lr.Energy
		if lr.Energy.PerComponent != nil {
			e.PerComponent = make(map[energy.Component]float64, len(lr.Energy.PerComponent))
			for c, pj := range lr.Energy.PerComponent {
				e.PerComponent[c] = pj
			}
		}
		out.Energy = &e
	}
	return &out
}

// layerResultSize estimates the retained bytes of a cached result for the
// cache's byte accounting. It need not be exact — only proportional enough
// that the byte bound means something.
func layerResultSize(lr *LayerResult) int64 {
	size := int64(512) // flat struct, headers, map overhead
	size += int64(len(lr.Layer.Name) + len(lr.Memory.LayerName))
	if lr.Sparse != nil {
		size += 128 + int64(len(lr.Sparse.LayerName)+len(lr.Sparse.Representation)+len(lr.Sparse.Ratio))
	}
	if lr.Partition != nil {
		size += 32
	}
	if lr.Energy != nil {
		size += 128 + 48*int64(len(lr.Energy.PerComponent))
	}
	return size
}
