package scalesim

import (
	"io"
	"os"
	"path/filepath"

	"scalesim/internal/report"
)

// Canonical report file names, as SCALE-Sim emits them.
const (
	ComputeReportFile   = "COMPUTE_REPORT.csv"
	BandwidthReportFile = "BANDWIDTH_REPORT.csv"
	MemoryReportFile    = "MEMORY_REPORT.csv"
	SparseReportFile    = "SPARSE_REPORT.csv"
	EnergyReportFile    = "ENERGY_REPORT.csv"
)

// Report is one CSV report of a run. It implements io.WriterTo.
type Report struct {
	name  string
	write func(io.Writer) error
}

// Filename is the report's canonical file name, e.g. "COMPUTE_REPORT.csv".
func (r *Report) Filename() string { return r.name }

// WriteTo renders the report as CSV.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	err := r.write(cw)
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReportSet holds the standard CSV reports of a Result. Reports whose
// model did not run are nil.
type ReportSet struct {
	Compute   *Report
	Bandwidth *Report
	Memory    *Report // nil when the memory model was disabled
	Sparse    *Report // nil when no layer ran sparse
	Energy    *Report // nil when energy modeling was disabled
}

// All returns the non-nil reports in canonical order.
func (rs *ReportSet) All() []*Report {
	var out []*Report
	for _, r := range []*Report{rs.Compute, rs.Bandwidth, rs.Memory, rs.Sparse, rs.Energy} {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// WriteAll creates dir (if needed) and writes every non-nil report to its
// canonical file name within it.
func (rs *ReportSet) WriteAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range rs.All() {
		f, err := os.Create(filepath.Join(dir, r.Filename()))
		if err != nil {
			return err
		}
		_, werr := r.WriteTo(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// Reports assembles the run's CSV reports. Compute and bandwidth are
// always present; memory, sparse and energy reports exist only when the
// corresponding model produced rows.
func (r *Result) Reports() *ReportSet {
	crows, brows, mrows, srows, erows := r.reportRows()
	rs := &ReportSet{
		Compute: &Report{name: ComputeReportFile, write: func(w io.Writer) error {
			return report.WriteCompute(w, crows)
		}},
		Bandwidth: &Report{name: BandwidthReportFile, write: func(w io.Writer) error {
			return report.WriteBandwidth(w, brows)
		}},
	}
	if len(mrows) > 0 {
		rs.Memory = &Report{name: MemoryReportFile, write: func(w io.Writer) error {
			return report.WriteMemory(w, mrows)
		}}
	}
	if len(srows) > 0 {
		rs.Sparse = &Report{name: SparseReportFile, write: func(w io.Writer) error {
			return report.WriteSparse(w, srows)
		}}
	}
	if len(erows) > 0 {
		rs.Energy = &Report{name: EnergyReportFile, write: func(w io.Writer) error {
			return report.WriteEnergy(w, erows)
		}}
	}
	return rs
}

// reportRows flattens the per-layer results into report rows. Layers whose
// memory model did not run contribute no memory row (a zero-valued row
// would be junk in the CSV).
func (r *Result) reportRows() ([]report.ComputeRow, []report.BandwidthRow,
	[]report.MemoryRow, []report.SparseRow, []report.EnergyRow) {
	var crows []report.ComputeRow
	var brows []report.BandwidthRow
	var mrows []report.MemoryRow
	var srows []report.SparseRow
	var erows []report.EnergyRow
	for i := range r.Layers {
		l := &r.Layers[i]
		crows = append(crows, report.ComputeRow{
			LayerName: l.Layer.Name, Dataflow: r.Config.Dataflow.String(),
			M: l.M, N: l.N, K: l.K,
			ComputeCycles: l.ComputeCycles, StallCycles: l.StallCycles,
			TotalCycles: l.TotalCycles, Utilization: l.Utilization,
			MappingEfficiency: l.MappingEff,
		})
		var rbw, wbw float64
		if l.TotalCycles > 0 {
			rbw = float64(l.DRAMReadWords) / float64(l.TotalCycles)
			wbw = float64(l.DRAMWriteWords) / float64(l.TotalCycles)
		}
		brows = append(brows, report.BandwidthRow{
			LayerName: l.Layer.Name, DRAMReadWords: l.DRAMReadWords,
			DRAMWriteWords: l.DRAMWriteWords, AvgReadBWWords: rbw,
			AvgWriteBW: wbw, ThroughputMBps: l.ThroughputMBps,
		})
		if l.Memory.LayerName != "" {
			mrows = append(mrows, l.Memory)
		}
		if l.Sparse != nil {
			srows = append(srows, *l.Sparse)
		}
		if l.Energy != nil {
			erows = append(erows, report.EnergyRow{
				LayerName:  l.Layer.Name,
				TotalMJ:    l.Energy.TotalMJ(),
				LeakageMJ:  l.Energy.LeakagePJ * 1e-9,
				AvgPowerMW: l.Energy.AvgPowerMW(),
				EdP:        l.Energy.EdP(),
			})
		}
	}
	return crows, brows, mrows, srows, erows
}

// WriteReports emits the standard CSV reports for a result to the writers
// that are non-nil.
//
// Deprecated: use Result.Reports, which names each report instead of
// relying on positional writers: res.Reports().WriteAll(dir), or WriteTo
// on the individual reports.
func WriteReports(res *Result, compute, bandwidth, memory, sparseW, energyW io.Writer) error {
	crows, brows, mrows, srows, erows := res.reportRows()
	if compute != nil {
		if err := report.WriteCompute(compute, crows); err != nil {
			return err
		}
	}
	if bandwidth != nil {
		if err := report.WriteBandwidth(bandwidth, brows); err != nil {
			return err
		}
	}
	if memory != nil {
		if err := report.WriteMemory(memory, mrows); err != nil {
			return err
		}
	}
	if sparseW != nil && len(srows) > 0 {
		if err := report.WriteSparse(sparseW, srows); err != nil {
			return err
		}
	}
	if energyW != nil && len(erows) > 0 {
		if err := report.WriteEnergy(energyW, erows); err != nil {
			return err
		}
	}
	return nil
}
