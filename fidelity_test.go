package scalesim_test

// Tests for the fidelity ladder as a public axis: enum round-trips, the
// StageFidelity declarations of the built-in stages, tier separation in
// the shared layer cache, the facade-level analytical-vs-event
// differential, and the screen-and-promote byte-identity bar.

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"scalesim"
)

func TestFidelityStringAndValid(t *testing.T) {
	cases := []struct {
		f    scalesim.Fidelity
		name string
	}{
		{scalesim.EventDriven, "event"},
		{scalesim.Analytical, "analytical"},
		{scalesim.CycleAccurate, "cycle"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.name {
			t.Errorf("Fidelity(%d).String() = %q, want %q", c.f, got, c.name)
		}
		if !c.f.Valid() {
			t.Errorf("Fidelity(%d).Valid() = false", c.f)
		}
		// Canonical name must parse back to the same tier.
		back, err := scalesim.ParseFidelity(c.name)
		if err != nil || back != c.f {
			t.Errorf("ParseFidelity(%q) = %v, %v; want %v", c.name, back, err, c.f)
		}
	}
	if scalesim.Fidelity(7).Valid() {
		t.Error("Fidelity(7).Valid() = true")
	}
	var zero scalesim.Fidelity
	if zero != scalesim.EventDriven {
		t.Error("zero Fidelity is not EventDriven")
	}
}

func TestParseFidelityAliasesAndErrors(t *testing.T) {
	aliases := map[string]scalesim.Fidelity{
		"":               scalesim.EventDriven,
		"event":          scalesim.EventDriven,
		"event-driven":   scalesim.EventDriven,
		"event_driven":   scalesim.EventDriven,
		"  Event  ":      scalesim.EventDriven,
		"analytical":     scalesim.Analytical,
		"analytic":       scalesim.Analytical,
		"ANALYTICAL":     scalesim.Analytical,
		"cycle":          scalesim.CycleAccurate,
		"cycle-accurate": scalesim.CycleAccurate,
		"cycle_accurate": scalesim.CycleAccurate,
	}
	for in, want := range aliases {
		got, err := scalesim.ParseFidelity(in)
		if err != nil || got != want {
			t.Errorf("ParseFidelity(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"exact", "rtl", "analytical-ish", "0"} {
		if _, err := scalesim.ParseFidelity(bad); err == nil {
			t.Errorf("ParseFidelity(%q) succeeded, want error", bad)
		}
	}
}

// TestStageFidelityLadders pins the ladder each built-in stage declares:
// the memory pass distinguishes all three tiers, layout replay exists at
// the event tiers only, and the closed-form passes are purely analytical.
func TestStageFidelityLadders(t *testing.T) {
	want := map[string][]scalesim.Fidelity{
		"compute": {scalesim.Analytical},
		"layout":  {scalesim.EventDriven, scalesim.CycleAccurate},
		"memory":  {scalesim.Analytical, scalesim.EventDriven, scalesim.CycleAccurate},
		"energy":  {scalesim.Analytical},
	}
	stages := map[string]scalesim.Stage{
		"compute": scalesim.ComputeStage(),
		"layout":  scalesim.LayoutStage(),
		"memory":  scalesim.MemoryStage(),
		"energy":  scalesim.EnergyStage(),
	}
	for name, st := range stages {
		sf, ok := st.(scalesim.StageFidelity)
		if !ok {
			t.Errorf("%s stage does not implement StageFidelity", name)
			continue
		}
		if got := sf.FidelityLadder(); !reflect.DeepEqual(got, want[name]) {
			t.Errorf("%s ladder = %v, want %v", name, got, want[name])
		}
	}
}

// memoryConfig enables the memory model so fidelity changes the result —
// and therefore must change the cache fingerprint.
func memoryConfig() scalesim.Config {
	cfg := scalesim.DefaultConfig()
	cfg.ArrayRows, cfg.ArrayCols = 16, 16
	cfg.Memory.Enabled = true
	return cfg
}

// TestCacheFidelitySeparation is ISSUE item (c): a shared cache must never
// serve an Analytical entry for an accurate request (or vice versa). The
// same config and topology are run at every tier through one cache; each
// tier's cold run must miss on every distinct layer shape, and each
// tier's warm rerun must then hit.
func TestCacheFidelitySeparation(t *testing.T) {
	cfg := memoryConfig()
	topo := exploreTopology() // fc1 and fc2 share a shape: 2 distinct, 3 layers
	ctx := context.Background()
	cache := scalesim.NewCache(0, 0)

	tiers := []scalesim.Fidelity{scalesim.Analytical, scalesim.EventDriven, scalesim.CycleAccurate}
	for _, fid := range tiers {
		cold, err := scalesim.New(cfg).Run(ctx, topo, scalesim.WithCache(cache), scalesim.WithFidelity(fid))
		if err != nil {
			t.Fatalf("%v cold: %v", fid, err)
		}
		if cold.CacheStats.Misses != 2 || cold.CacheStats.Hits != 1 {
			t.Errorf("%v cold run stats %+v, want 2 misses, 1 hit — tier served another tier's entry",
				fid, cold.CacheStats)
		}
		warm, err := scalesim.New(cfg).Run(ctx, topo, scalesim.WithCache(cache), scalesim.WithFidelity(fid))
		if err != nil {
			t.Fatalf("%v warm: %v", fid, err)
		}
		if warm.CacheStats.Misses != 0 || warm.CacheStats.Hits != 3 {
			t.Errorf("%v warm run stats %+v, want 0 misses, 3 hits", fid, warm.CacheStats)
		}
	}
}

// TestDifferentialFidelityTiers is the facade-level tier differential:
// for memory-enabled runs, Analytical must agree with EventDriven on
// everything that is a property of the schedule (compute cycles, DRAM
// words) and lower-bound the cycle counts; CycleAccurate (the reference
// loops) must be cycle-for-cycle identical to EventDriven.
func TestDifferentialFidelityTiers(t *testing.T) {
	cfg := memoryConfig()
	ctx := context.Background()
	topos := []*scalesim.Topology{
		exploreTopology(),
		{Name: "conv", Layers: []scalesim.Layer{
			{Name: "c1", Kind: scalesim.Conv, IfmapH: 14, IfmapW: 14, FilterH: 3, FilterW: 3,
				Channels: 16, NumFilters: 32, Stride: 1},
		}},
	}
	for _, topo := range topos {
		t.Run(topo.Name, func(t *testing.T) {
			run := func(fid scalesim.Fidelity) *scalesim.Result {
				r, err := scalesim.New(cfg).Run(ctx, topo, scalesim.WithFidelity(fid))
				if err != nil {
					t.Fatalf("%v: %v", fid, err)
				}
				return r
			}
			ana, evt, cyc := run(scalesim.Analytical), run(scalesim.EventDriven), run(scalesim.CycleAccurate)

			if !reflect.DeepEqual(evt.Layers, cyc.Layers) {
				t.Error("CycleAccurate diverges from EventDriven — reference loop broke")
			}
			for i := range evt.Layers {
				a, e := &ana.Layers[i], &evt.Layers[i]
				name := a.Layer.Name
				if a.ComputeCycles != e.ComputeCycles {
					t.Errorf("layer %s: analytical ComputeCycles %d, event %d", name, a.ComputeCycles, e.ComputeCycles)
				}
				if a.DRAMReadWords != e.DRAMReadWords || a.DRAMWriteWords != e.DRAMWriteWords {
					t.Errorf("layer %s: analytical words %d/%d, event %d/%d",
						name, a.DRAMReadWords, a.DRAMWriteWords, e.DRAMReadWords, e.DRAMWriteWords)
				}
				if a.TotalCycles > e.TotalCycles {
					t.Errorf("layer %s: analytical TotalCycles %d exceeds event %d — not a lower bound",
						name, a.TotalCycles, e.TotalCycles)
				}
			}
		})
	}
}

// TestExploreScreenPromoteByteIdentical is the acceptance bar for the
// two-phase search: with PromoteTopK covering the whole space, the
// screened frontier must be byte-identical (CSV) to a plain single-tier
// Explore at any parallelism — screening may only ever change cost, never
// the answer, when nothing is pruned.
func TestExploreScreenPromoteByteIdentical(t *testing.T) {
	topo := exploreTopology()
	cfg := memoryConfig()
	cfg.Energy.Enabled = true
	space := exploreSpace(t)
	objs := []scalesim.Objective{scalesim.CyclesObjective(), scalesim.EnergyObjective()}

	plain, err := scalesim.Explore(context.Background(), cfg, topo, space,
		scalesim.WithExploreObjectives(objs...),
		scalesim.WithExploreStrategy(scalesim.GridSearch),
		scalesim.WithExploreBudget(int(space.Size())),
	)
	if err != nil {
		t.Fatal(err)
	}
	var plainCSV bytes.Buffer
	if _, err := plain.CSVReport().WriteTo(&plainCSV); err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			f, err := scalesim.Explore(context.Background(), cfg, topo, space,
				scalesim.WithExploreObjectives(objs...),
				scalesim.WithExploreStrategy(scalesim.GridSearch),
				scalesim.WithExploreBudget(int(space.Size())),
				scalesim.WithExploreParallelism(par),
				scalesim.WithPromoteTopK(int(space.Size())),
			)
			if err != nil {
				t.Fatal(err)
			}
			if int64(f.Screened) != space.Size() {
				t.Errorf("screened %d of %d points", f.Screened, space.Size())
			}
			if int64(f.Promoted) != space.Size() {
				t.Errorf("promoted %d of %d points — top-K covering the space must promote everything",
					f.Promoted, space.Size())
			}
			if f.Evaluated != f.Promoted {
				t.Errorf("accurate-tier evals %d != promoted %d", f.Evaluated, f.Promoted)
			}
			var got bytes.Buffer
			if _, err := f.CSVReport().WriteTo(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(plainCSV.Bytes(), got.Bytes()) {
				t.Errorf("promote-everything frontier CSV differs from single-tier Explore:\n%s\n---\n%s",
					plainCSV.Bytes(), got.Bytes())
			}
			for _, p := range f.Points {
				if p.Fidelity != scalesim.EventDriven {
					t.Errorf("point %s carries fidelity %v, want the accurate tier", p.Name, p.Fidelity)
				}
				if len(p.ScreenError) != len(objs) {
					t.Errorf("point %s: screen error for %d objectives, want %d", p.Name, len(p.ScreenError), len(objs))
				}
			}
		})
	}
}

// TestExploreScreeningPrunes covers the intended use: a small top-K
// promotes only a slice of the space, the frontier stays on the accurate
// tier, and per-point screening errors are recorded.
func TestExploreScreeningPrunes(t *testing.T) {
	topo := exploreTopology()
	cfg := memoryConfig()
	space := exploreSpace(t)

	f, err := scalesim.Explore(context.Background(), cfg, topo, space,
		scalesim.WithExploreObjectives(scalesim.CyclesObjective()),
		scalesim.WithExploreStrategy(scalesim.GridSearch),
		scalesim.WithExploreBudget(int(space.Size())),
		scalesim.WithPromoteTopK(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if int64(f.Screened) != space.Size() {
		t.Errorf("screened %d, want the whole space %d", f.Screened, space.Size())
	}
	if f.Promoted >= f.Screened || f.Promoted < 1 {
		t.Errorf("promoted %d of %d screened, want a strict subset", f.Promoted, f.Screened)
	}
	if f.Evaluated != f.Promoted {
		t.Errorf("Evaluated %d != Promoted %d", f.Evaluated, f.Promoted)
	}
	if f.Fidelity != scalesim.EventDriven {
		t.Errorf("frontier fidelity %v, want EventDriven", f.Fidelity)
	}
	if len(f.Points) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range f.Points {
		if p.Fidelity != scalesim.EventDriven {
			t.Errorf("point %s at %v, want accurate tier", p.Name, p.Fidelity)
		}
		if _, ok := p.ScreenError["cycles"]; !ok {
			t.Errorf("point %s missing screen error for cycles objective", p.Name)
		}
	}

	// The screened frontier must still be Pareto-consistent with a plain
	// search: every screened frontier point's objective vector must appear
	// undominated among the plain frontier's vectors only if promotion
	// kept the true optimum — with PromoteTopK >= front size on a
	// single-objective search the best point always survives screening
	// (the analytical tier preserves the compute-bound argmin here).
	plain, err := scalesim.Explore(context.Background(), cfg, topo, space,
		scalesim.WithExploreObjectives(scalesim.CyclesObjective()),
		scalesim.WithExploreStrategy(scalesim.GridSearch),
		scalesim.WithExploreBudget(int(space.Size())),
	)
	if err != nil {
		t.Fatal(err)
	}
	best := plain.Points[0].Objectives[0]
	got := f.Points[0].Objectives[0]
	if got > best {
		t.Errorf("screened best %v worse than plain best %v", got, best)
	}
}
