package scalesim

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"log/slog"
	"math"
	"path/filepath"
	"sync"

	"scalesim/internal/diskstore"
	"scalesim/internal/simcache"
)

// StoreStats is a point-in-time snapshot of an attached result store: log
// occupancy, lookup effectiveness since the store was opened, what the
// last open recovered, and garbage-collection activity.
type StoreStats struct {
	// Entries and LogBytes describe current occupancy; MaxBytes is the
	// configured capacity.
	Entries  int
	LogBytes int64
	MaxBytes int64
	// Hits/Misses/Puts count lookups and writes since the store was
	// opened; PutBytes is payload bytes appended.
	Hits, Misses, Puts int64
	PutBytes           int64
	// Recovered and Skipped describe the last open: entries loaded vs.
	// damaged entries dropped. TruncatedBytes is the torn tail cut off.
	Recovered, Skipped int
	TruncatedBytes     int64
	// GCRuns and GCDropped count compactions and the entries they dropped.
	GCRuns, GCDropped int64
	// SnapshotUpTo is the log prefix (bytes) the newest index snapshot
	// covers; SnapshotUnix is when it was written (Unix seconds).
	SnapshotUpTo int64
	SnapshotUnix int64
	// IOErrors counts the store's internal read/write failures since open;
	// the degradation ladder (StoreDegraded) trips on consecutive failures.
	IOErrors int64
}

// AttachStore opens (creating if needed) a persistent result store in dir
// and attaches it as the cache's second tier: memory miss → disk lookup →
// simulate + write-through. Keys are the same content-addressed
// fingerprints the in-memory cache uses, so results persisted by one
// process warm-start any later process pointed at the same directory.
//
// maxBytes bounds the on-disk log (non-positive selects the 1 GiB
// default); exceeding it compacts away the oldest entries. A store
// directory is owned by one process at a time — AttachStore fails if
// another live process holds it. Attaching the directory already attached
// is a no-op; attaching a different one is an error (detach with
// CloseStore first).
func (c *Cache) AttachStore(dir string, maxBytes int64) error {
	return c.AttachStoreFS(dir, maxBytes, nil)
}

// AttachStoreFS is AttachStore through an explicit diskstore filesystem —
// the seam internal/faultinject substitutes to exercise the store's
// recovery and degradation paths deterministically. A nil fs selects the
// real OS.
func (c *Cache) AttachStoreFS(dir string, maxBytes int64, fs diskstore.FS) error {
	dir = filepath.Clean(dir)
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store != nil {
		if c.storeDir == dir {
			return nil
		}
		return fmt.Errorf("scalesim: cache already has store %q attached", c.storeDir)
	}
	s, err := diskstore.Open(dir, diskstore.Options{MaxBytes: maxBytes, FS: fs})
	if err != nil {
		return err
	}
	c.store = s
	c.storeDir = dir
	c.storeDegraded.Store(false)
	c.c.SetTier(&storeTier{s: s, c: c}, storeCodec{})
	return nil
}

// StoreStats snapshots the attached store's counters; ok is false when no
// store is attached.
func (c *Cache) StoreStats() (st StoreStats, ok bool) {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store == nil {
		return StoreStats{}, false
	}
	return StoreStats(c.store.Stats()), true
}

// SaveStoreSnapshot atomically persists the store's index so the next open
// replays only the log appended afterwards. A no-op without a store.
// CloseStore snapshots too; call this for long-lived processes that want
// crash-time replay bounded between clean shutdowns.
func (c *Cache) SaveStoreSnapshot() error {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store == nil {
		return nil
	}
	return c.store.SaveSnapshot()
}

// CloseStore detaches the store (lookups revert to memory-only), snapshots
// its index and closes it, releasing the directory for other processes. A
// no-op without a store.
func (c *Cache) CloseStore() error {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store == nil {
		return nil
	}
	c.c.SetTier(nil, nil)
	err := c.store.Close()
	c.store, c.storeDir = nil, ""
	c.storeDegraded.Store(false)
	return err
}

// StoreDegraded reports whether the degradation ladder has detached the
// attached store: repeated I/O errors mid-serve demoted the cache to
// memory-only operation (the scalesim_store_degraded gauge).
func (c *Cache) StoreDegraded() bool { return c.storeDegraded.Load() }

// degradeStore detaches a dying store mid-serve: lookups and writes revert
// to memory-only instead of paying for (and silently dropping) every tier
// operation against a failing disk. The store handle stays open so stats
// remain readable and CloseStore can still salvage a snapshot.
func (c *Cache) degradeStore(s *diskstore.Store) {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store != s || c.storeDegraded.Load() {
		return // already detached or replaced
	}
	c.c.SetTier(nil, nil)
	c.storeDegraded.Store(true)
	slog.Warn("scalesim: result store degraded: detaching after repeated I/O errors, continuing memory-only",
		"dir", c.storeDir, "io_errors", s.IOErrors())
}

// resolveStore applies a WithStore directory after all options are parsed:
// a store implies caching, so a run without an explicit cache gets the
// process-wide shared one.
func (o *options) resolveStore() error {
	if o.storeDir == "" {
		return nil
	}
	if o.cache == nil {
		o.cache = SharedCache()
	}
	return o.cache.AttachStore(o.storeDir, o.storeBytes)
}

// storeFailThreshold is the degradation ladder's trip point: this many
// consecutive tier operations hitting internal store I/O errors mean the
// disk is dying, not hiccuping, and the store detaches itself.
const storeFailThreshold = 3

// storeTier adapts diskstore.Store to the simcache.Tier contract
// (best-effort: write errors are dropped, the store's own stats record
// lookup outcomes). It also runs the degradation ladder: each operation
// checks whether the store accrued new I/O errors, and a run of
// storeFailThreshold consecutive failing operations detaches the tier.
type storeTier struct {
	s *diskstore.Store
	c *Cache

	mu     sync.Mutex
	lastIO int64 // store IOErrors watermark after the previous operation
	fails  int   // consecutive operations that accrued I/O errors
}

func (t *storeTier) GetBlob(k simcache.Key) ([]byte, bool) {
	v, ok := t.s.Get(k)
	t.observe()
	return v, ok
}

func (t *storeTier) PutBlob(k simcache.Key, payload []byte) {
	_ = t.s.Put(k, payload)
	t.observe()
}

// observe advances the degradation ladder after a tier operation. Only
// internal I/O errors count — a clean miss or a duplicate put is healthy —
// and any clean operation resets the run, so the ladder trips on a dying
// disk, not on sporadic bit rot.
func (t *storeTier) observe() {
	io := t.s.IOErrors()
	t.mu.Lock()
	failed := io > t.lastIO
	t.lastIO = io
	if !failed {
		t.fails = 0
		t.mu.Unlock()
		return
	}
	t.fails++
	trip := t.fails >= storeFailThreshold
	t.mu.Unlock()
	if trip {
		t.c.degradeStore(t.s)
	}
}

// Payload kind tags. The simcache.SchemaVersion mixed into every key —
// not these tags — is what invalidates old payloads on format changes;
// the tags only keep the value kinds apart within one schema epoch.
const (
	codecLayerResult byte = 1 // gob-encoded *LayerResult
	codecFloat64     byte = 2 // 8 bytes, IEEE-754 bits little-endian
	codecBytes       byte = 3 // raw blob
)

// storeCodec translates the three persistable cache value kinds — layer
// results, layout slowdown factors, rendered trace blobs — to kind-tagged
// payloads. Other kinds (SRAM trace builders hold unexported state) return
// ok=false and stay memory-only.
type storeCodec struct{}

func (storeCodec) Encode(v any) ([]byte, bool) {
	switch x := v.(type) {
	case *LayerResult:
		var buf bytes.Buffer
		buf.WriteByte(codecLayerResult)
		if err := gob.NewEncoder(&buf).Encode(x); err != nil {
			return nil, false
		}
		return buf.Bytes(), true
	case float64:
		p := make([]byte, 9)
		p[0] = codecFloat64
		binary.LittleEndian.PutUint64(p[1:], math.Float64bits(x))
		return p, true
	case []byte:
		p := make([]byte, 1+len(x))
		p[0] = codecBytes
		copy(p[1:], x)
		return p, true
	}
	return nil, false
}

func (storeCodec) Decode(payload []byte) (any, int64, bool) {
	if len(payload) == 0 {
		return nil, 0, false
	}
	body := payload[1:]
	switch payload[0] {
	case codecLayerResult:
		var lr LayerResult
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&lr); err != nil {
			return nil, 0, false
		}
		return &lr, layerResultSize(&lr), true
	case codecFloat64:
		if len(body) != 8 {
			return nil, 0, false
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(body)), 8, true
	case codecBytes:
		b := make([]byte, len(body))
		copy(b, body)
		return b, int64(len(b)), true
	}
	return nil, 0, false
}
