package scalesim

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"path/filepath"

	"scalesim/internal/diskstore"
	"scalesim/internal/simcache"
)

// StoreStats is a point-in-time snapshot of an attached result store: log
// occupancy, lookup effectiveness since the store was opened, what the
// last open recovered, and garbage-collection activity.
type StoreStats struct {
	// Entries and LogBytes describe current occupancy; MaxBytes is the
	// configured capacity.
	Entries  int
	LogBytes int64
	MaxBytes int64
	// Hits/Misses/Puts count lookups and writes since the store was
	// opened; PutBytes is payload bytes appended.
	Hits, Misses, Puts int64
	PutBytes           int64
	// Recovered and Skipped describe the last open: entries loaded vs.
	// damaged entries dropped. TruncatedBytes is the torn tail cut off.
	Recovered, Skipped int
	TruncatedBytes     int64
	// GCRuns and GCDropped count compactions and the entries they dropped.
	GCRuns, GCDropped int64
	// SnapshotUpTo is the log prefix (bytes) the newest index snapshot
	// covers; SnapshotUnix is when it was written (Unix seconds).
	SnapshotUpTo int64
	SnapshotUnix int64
}

// AttachStore opens (creating if needed) a persistent result store in dir
// and attaches it as the cache's second tier: memory miss → disk lookup →
// simulate + write-through. Keys are the same content-addressed
// fingerprints the in-memory cache uses, so results persisted by one
// process warm-start any later process pointed at the same directory.
//
// maxBytes bounds the on-disk log (non-positive selects the 1 GiB
// default); exceeding it compacts away the oldest entries. A store
// directory is owned by one process at a time — AttachStore fails if
// another live process holds it. Attaching the directory already attached
// is a no-op; attaching a different one is an error (detach with
// CloseStore first).
func (c *Cache) AttachStore(dir string, maxBytes int64) error {
	dir = filepath.Clean(dir)
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store != nil {
		if c.storeDir == dir {
			return nil
		}
		return fmt.Errorf("scalesim: cache already has store %q attached", c.storeDir)
	}
	s, err := diskstore.Open(dir, diskstore.Options{MaxBytes: maxBytes})
	if err != nil {
		return err
	}
	c.store = s
	c.storeDir = dir
	c.c.SetTier(storeTier{s: s}, storeCodec{})
	return nil
}

// StoreStats snapshots the attached store's counters; ok is false when no
// store is attached.
func (c *Cache) StoreStats() (st StoreStats, ok bool) {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store == nil {
		return StoreStats{}, false
	}
	return StoreStats(c.store.Stats()), true
}

// SaveStoreSnapshot atomically persists the store's index so the next open
// replays only the log appended afterwards. A no-op without a store.
// CloseStore snapshots too; call this for long-lived processes that want
// crash-time replay bounded between clean shutdowns.
func (c *Cache) SaveStoreSnapshot() error {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store == nil {
		return nil
	}
	return c.store.SaveSnapshot()
}

// CloseStore detaches the store (lookups revert to memory-only), snapshots
// its index and closes it, releasing the directory for other processes. A
// no-op without a store.
func (c *Cache) CloseStore() error {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.store == nil {
		return nil
	}
	c.c.SetTier(nil, nil)
	err := c.store.Close()
	c.store, c.storeDir = nil, ""
	return err
}

// resolveStore applies a WithStore directory after all options are parsed:
// a store implies caching, so a run without an explicit cache gets the
// process-wide shared one.
func (o *options) resolveStore() error {
	if o.storeDir == "" {
		return nil
	}
	if o.cache == nil {
		o.cache = SharedCache()
	}
	return o.cache.AttachStore(o.storeDir, o.storeBytes)
}

// storeTier adapts diskstore.Store to the simcache.Tier contract
// (best-effort: write errors are dropped, the store's own stats record
// lookup outcomes).
type storeTier struct{ s *diskstore.Store }

func (t storeTier) GetBlob(k simcache.Key) ([]byte, bool) { return t.s.Get(k) }
func (t storeTier) PutBlob(k simcache.Key, payload []byte) {
	_ = t.s.Put(k, payload)
}

// Payload kind tags. The simcache.SchemaVersion mixed into every key —
// not these tags — is what invalidates old payloads on format changes;
// the tags only keep the value kinds apart within one schema epoch.
const (
	codecLayerResult byte = 1 // gob-encoded *LayerResult
	codecFloat64     byte = 2 // 8 bytes, IEEE-754 bits little-endian
	codecBytes       byte = 3 // raw blob
)

// storeCodec translates the three persistable cache value kinds — layer
// results, layout slowdown factors, rendered trace blobs — to kind-tagged
// payloads. Other kinds (SRAM trace builders hold unexported state) return
// ok=false and stay memory-only.
type storeCodec struct{}

func (storeCodec) Encode(v any) ([]byte, bool) {
	switch x := v.(type) {
	case *LayerResult:
		var buf bytes.Buffer
		buf.WriteByte(codecLayerResult)
		if err := gob.NewEncoder(&buf).Encode(x); err != nil {
			return nil, false
		}
		return buf.Bytes(), true
	case float64:
		p := make([]byte, 9)
		p[0] = codecFloat64
		binary.LittleEndian.PutUint64(p[1:], math.Float64bits(x))
		return p, true
	case []byte:
		p := make([]byte, 1+len(x))
		p[0] = codecBytes
		copy(p[1:], x)
		return p, true
	}
	return nil, false
}

func (storeCodec) Decode(payload []byte) (any, int64, bool) {
	if len(payload) == 0 {
		return nil, 0, false
	}
	body := payload[1:]
	switch payload[0] {
	case codecLayerResult:
		var lr LayerResult
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&lr); err != nil {
			return nil, 0, false
		}
		return &lr, layerResultSize(&lr), true
	case codecFloat64:
		if len(body) != 8 {
			return nil, 0, false
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(body)), 8, true
	case codecBytes:
		b := make([]byte, len(body))
		copy(b, body)
		return b, int64(len(b)), true
	}
	return nil, 0, false
}
