package scalesim

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"scalesim/internal/simcache"
	"scalesim/internal/telemetry"
)

// Run simulates every layer of the topology and returns per-layer results
// in topology order.
//
// Layers are independent and run on a bounded worker pool; the default
// width is GOMAXPROCS, WithParallelism overrides it. Results are
// deterministic: any parallelism produces the same Result. The context
// cancels the run between layers (and between stages of a layer); the
// first layer error cancels the remaining work and is returned.
//
// With a cache attached (WithCache, WithSharedCache), layers whose
// fingerprint — configuration, stage pipeline and layer shape, but not
// layer name — matches an earlier simulation are served as deep copies of
// the cached result; Result.CacheStats reports how many were. Cached and
// uncached runs produce byte-identical reports.
func (s *Simulator) Run(ctx context.Context, topo *Topology, opts ...Option) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	o := s.opts
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.resolveStore(); err != nil {
		return nil, err
	}
	lc := newLayerCache(o.cache, &s.cfg, &o)
	res := &Result{Config: s.cfg, Layers: make([]LayerResult, len(topo.Layers))}

	// A nil tracer is the zero-overhead default: every span below no-ops.
	var tracer *telemetry.Tracer
	if o.traceEnabled {
		tracer = telemetry.NewTracer()
	}
	start := time.Now()
	root := tracer.Start("run", "run")
	root.SetAttr("run", s.cfg.RunName)
	root.SetAttr("dataflow", s.cfg.Dataflow.String())
	root.SetAttr("array", fmt.Sprintf("%dx%d", s.cfg.ArrayRows, s.cfg.ArrayCols))
	root.SetAttr("layers", len(topo.Layers))

	err := runLayers(ctx, &s.cfg, &o, topo, res.Layers, lc, root)
	root.End()
	if err != nil {
		return nil, err
	}
	if lc != nil {
		res.CacheStats = lc.stats()
	}
	if tracer != nil {
		res.wall = time.Since(start)
		res.spans = tracer.Records()
		if o.traceDir != "" {
			if err := writeTraceFile(tracer, o.traceDir, traceBaseName(&o, &s.cfg)); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// traceBaseName picks the trace file's base name: the sweep point name when
// set, else the run name, else "run".
func traceBaseName(o *options, cfg *Config) string {
	name := o.traceName
	if name == "" {
		name = cfg.RunName
	}
	if name == "" {
		name = "run"
	}
	// File-system safety: point names are arbitrary user strings.
	name = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
	return name
}

// writeTraceFile renders the tracer as Chrome trace-event JSON under dir.
func writeTraceFile(tracer *telemetry.Tracer, dir, base string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("scalesim: trace dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, base+".trace.json"))
	if err != nil {
		return fmt.Errorf("scalesim: trace file: %w", err)
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("scalesim: write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("scalesim: write trace: %w", err)
	}
	return nil
}

// isCtxSentinel reports whether err is a bare context error — exactly what
// runLayer returns when it aborts between stages on cancellation. Stage
// failures are always wrapped with the stage name, so a stage error that
// merely wraps context.DeadlineExceeded (e.g. a backend's own timeout) is
// not a sentinel and is reported as a real layer error.
func isCtxSentinel(err error) bool {
	return err == context.Canceled || err == context.DeadlineExceeded
}

// runLayers fills out[i] with the result of topo.Layers[i] using a pool of
// workers. On error the pool drains; the lowest-index error among the
// layers that actually ran is reported (layers past the first failure may
// never start, so under parallelism the surfaced error can differ between
// runs when several layers fail).
func runLayers(ctx context.Context, cfg *Config, o *options, topo *Topology, out []LayerResult, lc *layerCache, root *telemetry.Span) error {
	n := len(topo.Layers)
	if n == 0 {
		return ctx.Err()
	}
	workers := o.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	if workers == 1 {
		for i := range topo.Layers {
			if err := ctx.Err(); err != nil {
				return err
			}
			lr, err := runLayer(ctx, cfg, o, &topo.Layers[i], lc, layerSpan(root, topo, i))
			if err == nil {
				out[i] = *lr
			}
			if o.progress != nil {
				o.progress(LayerProgress{
					Index: i, Total: n, Layer: topo.Layers[i].Name, Done: i + 1, Err: err,
				})
			}
			if err != nil {
				if isCtxSentinel(err) {
					return err
				}
				return layerError(&topo.Layers[i], err)
			}
		}
		return nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu   sync.Mutex
		done int
		errs = make([]error, n)
	)
	forEachIndex(runCtx, n, workers, func(i int) {
		if runCtx.Err() != nil {
			return
		}
		lr, err := runLayer(runCtx, cfg, o, &topo.Layers[i], lc, layerSpan(root, topo, i))
		mu.Lock()
		if err != nil {
			errs[i] = err
			cancel() // first error aborts the remaining layers
		} else {
			out[i] = *lr
		}
		done++
		if o.progress != nil {
			// mu keeps callbacks serialized.
			o.progress(LayerProgress{Index: i, Total: n, Layer: topo.Layers[i].Name, Done: done, Err: err})
		}
		mu.Unlock()
	})

	for i, err := range errs {
		if err == nil || isCtxSentinel(err) {
			// nil, or a layer aborted by cancellation — not a failure of
			// its own.
			continue
		}
		return layerError(&topo.Layers[i], err)
	}
	// No layer failed outright; surface external cancellation, if any.
	return ctx.Err()
}

// forEachIndex runs fn(i) for every i in [0, n) on a pool of `workers`
// goroutines and blocks until all dispatched calls return. Cancelling ctx
// stops dispatching new indices; fn is never called for the rest.
func forEachIndex(ctx context.Context, n, workers int, fn func(int)) {
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func layerError(l *Layer, err error) error {
	return fmt.Errorf("scalesim: layer %q: %w", l.Name, err)
}

// layerSpan opens the span for topo.Layers[i], pinned to its own display
// track so parallel layers render as parallel lanes. Nil when detached.
func layerSpan(root *telemetry.Span, topo *Topology, i int) *telemetry.Span {
	ls := root.Child(topo.Layers[i].Name, "layer")
	ls.SetTrack(i + 1)
	ls.SetAttr("index", i)
	return ls
}

// runLayer pushes one layer through the stage pipeline, consulting the
// layer cache (when enabled) before doing any work and populating it
// after.
func runLayer(ctx context.Context, cfg *Config, o *options, l *Layer, lc *layerCache, span *telemetry.Span) (*LayerResult, error) {
	defer span.End()
	var ckey simcache.Key
	if lc != nil {
		ckey = lc.key(l)
		hit, err := lc.lookup(ctx, ckey, l)
		if err != nil {
			// Cancelled while coalesced behind another worker's
			// simulation of this shape; the bare context error is the
			// cancellation sentinel runLayers expects.
			return nil, err
		}
		if hit != nil {
			span.SetAttr("cache", "hit")
			return hit, nil
		}
		span.SetAttr("cache", "miss")
		// We hold the single-flight slot for this shape: simulate, then
		// release it (after put on success, so coalesced workers hit).
		defer lc.done(ckey)
	}
	m, n, k := l.GEMMDims()
	lr := &LayerResult{Layer: *l, M: m, N: n, K: k}
	sc := &StageContext{
		Config:      cfg,
		ERT:         o.ert,
		Layer:       l,
		Fidelity:    o.fidelity,
		Dataflow:    cfg.Dataflow,
		Rows:        cfg.ArrayRows,
		Cols:        cfg.ArrayCols,
		M:           m,
		N:           n,
		K:           k,
		FilterRatio: 1,
	}
	if o.cache != nil {
		// Sub-result memoization (layout analysis) stays valid even when
		// whole-layer caching is off because of a custom stage: the built-in
		// stages key their sub-results on exactly what they read.
		sc.cache = o.cache.c
	}
	for _, st := range o.stages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc.Span = span.Child(st.Name(), "stage")
		err := st.Apply(ctx, sc, lr)
		sc.Span.End()
		if err != nil {
			return nil, fmt.Errorf("%s stage: %w", st.Name(), err)
		}
	}
	if lc != nil {
		lc.put(ckey, lr)
	}
	return lr, nil
}
