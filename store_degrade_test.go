package scalesim

import (
	"testing"

	"scalesim/internal/faultinject"
	"scalesim/internal/simcache"
)

// TestStoreDegradesAfterRepeatedIOErrors walks the degradation ladder: a
// store whose every write fails accrues storeFailThreshold consecutive
// failing tier operations and detaches itself — the cache survives in
// memory-only mode, stats stay readable, and CloseStore still releases the
// directory.
func TestStoreDegradesAfterRepeatedIOErrors(t *testing.T) {
	p := faultinject.New(faultinject.Config{Seed: 11, DiskError: 1})
	c := NewCache(0, 0)
	if err := c.AttachStoreFS(t.TempDir(), 0, p.FS(nil)); err != nil {
		t.Fatalf("AttachStoreFS under write faults: %v", err)
	}

	tier := &storeTier{s: c.store, c: c}
	for i := 0; i < storeFailThreshold; i++ {
		if c.StoreDegraded() {
			t.Fatalf("store degraded after %d failing ops, want %d", i, storeFailThreshold)
		}
		tier.PutBlob(simcache.Key{byte(i)}, []byte{codecBytes, 'x'})
	}
	if !c.StoreDegraded() {
		t.Fatal("store not degraded after repeated I/O errors")
	}

	// The handle stays open for observability: stats still answer and show
	// the errors that tripped the ladder.
	st, ok := c.StoreStats()
	if !ok {
		t.Fatal("StoreStats stopped answering after degradation")
	}
	if st.IOErrors < int64(storeFailThreshold) {
		t.Errorf("IOErrors = %d, want >= %d", st.IOErrors, storeFailThreshold)
	}

	// Detach still works (its snapshot write may fail on the dying disk —
	// that is not a reason to keep the directory locked).
	c.CloseStore() //nolint:errcheck
	if _, ok := c.StoreStats(); ok {
		t.Error("StoreStats still reports a store after CloseStore")
	}
	if c.StoreDegraded() {
		t.Error("degraded flag survived CloseStore")
	}
}

// TestStoreDegradationLadderResetsOnCleanOp: only *consecutive* failures
// trip the ladder — a healthy operation in between (here a clean index
// miss, which does no I/O) resets the run, so sporadic errors never
// detach the store.
func TestStoreDegradationLadderResetsOnCleanOp(t *testing.T) {
	p := faultinject.New(faultinject.Config{Seed: 12, DiskError: 1})
	c := NewCache(0, 0)
	if err := c.AttachStoreFS(t.TempDir(), 0, p.FS(nil)); err != nil {
		t.Fatalf("AttachStoreFS under write faults: %v", err)
	}
	defer c.CloseStore() //nolint:errcheck

	tier := &storeTier{s: c.store, c: c}
	for i := 0; i < 3*storeFailThreshold; i++ {
		tier.PutBlob(simcache.Key{0xFF, byte(i)}, []byte{codecBytes, 'x'}) // fails
		tier.GetBlob(simcache.Key{0xEE, byte(i)})                          // clean miss, resets
	}
	if c.StoreDegraded() {
		t.Fatal("alternating fail/clean operations tripped the ladder")
	}
}
