package scalesim

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"scalesim/internal/dram"
	"scalesim/internal/simcache"
	"scalesim/internal/sram"
	"scalesim/internal/systolic"
	"scalesim/internal/trace"
)

// WriteTraces emits SCALE-Sim's cycle-accurate trace files for every layer
// of the topology into dir:
//
//	<layer>_sram_ifmap_read.csv   per-cycle ifmap SRAM read addresses
//	<layer>_sram_filter_read.csv  per-cycle filter SRAM read addresses
//	<layer>_sram_ofmap_write.csv  per-cycle ofmap SRAM write addresses
//	<layer>_dram_trace.csv        timestamped DRAM transactions with
//	                              round-trip latencies (only when the
//	                              memory model is enabled)
//
// Traces can be large: a layer with C compute cycles produces O(C) rows.
//
// When the Simulator was built with WithCache (or WithSharedCache), the
// rendered trace bytes are cached by layer shape, so repeated-shape layers
// and repeated WriteTraces calls after a Run do not regenerate the demand
// stream or re-simulate the DRAM system — the bytes are written straight
// from the cache. Blobs that exceed the cache's byte budget are still
// written but not retained.
func (s *Simulator) WriteTraces(topo *Topology, dir string) error {
	if err := s.cfg.Validate(); err != nil {
		return err
	}
	if err := topo.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// The configuration part of the DRAM trace key is constant across the
	// call; hash it once instead of reflecting over Config per layer.
	var dramBase simcache.Key
	if s.traceCache() != nil {
		h := simcache.NewHasher()
		h.String("scalesim/trace-dram/v1")
		h.Value(fingerprintConfig(&s.cfg))
		dramBase = h.Sum()
	}
	for i := range topo.Layers {
		if err := s.writeLayerTraces(&topo.Layers[i], dir, dramBase); err != nil {
			return fmt.Errorf("scalesim: traces for layer %q: %w", topo.Layers[i].Name, err)
		}
	}
	return nil
}

func (s *Simulator) writeLayerTraces(l *Layer, dir string, dramBase simcache.Key) error {
	m, n, k := l.GEMMDims()
	base := filepath.Join(dir, sanitize(l.Name))
	if err := s.writeSRAMTraces(base, m, n, k); err != nil {
		return err
	}
	if !s.cfg.Memory.Enabled {
		return nil
	}
	return s.writeDRAMTrace(base, dramBase, m, n, k)
}

// traceCache returns the simulator's attached cache, or nil.
func (s *Simulator) traceCache() *simcache.Cache {
	if s.opts.cache == nil {
		return nil
	}
	return s.opts.cache.c
}

// traceBudget bounds the total bytes a group of tee buffers may retain —
// the cache's admissible entry size, shared across every buffer whose
// blobs will be cached as one entry, so buffering can never exceed what
// the cache would accept. Single-goroutine use only (the trace generators
// are sequential).
type traceBudget struct {
	remaining int64
	over      bool
}

// cappedBuffer accumulates teed trace bytes while its shared budget
// lasts; past it the budget is marked overdrawn, buffered bytes are
// dropped and further writes are counted but not retained, so an
// uncacheably large trace never balloons resident memory just to be
// rejected by the cache afterwards. Write never fails: the file writer
// sharing the MultiWriter is the one that must see every byte.
type cappedBuffer struct {
	buf    bytes.Buffer
	budget *traceBudget
}

func (b *cappedBuffer) Write(p []byte) (int, error) {
	if !b.budget.over {
		if int64(len(p)) > b.budget.remaining {
			b.budget.over = true
			b.buf = bytes.Buffer{} // free what was buffered so far
		} else {
			b.budget.remaining -= int64(len(p))
			b.buf.Write(p)
		}
	}
	return len(p), nil
}

// sramTraceBlobs holds the rendered SRAM trace CSVs of one layer shape.
// The three files depend only on (dataflow, array shape, GEMM dims) — the
// demand stream carries no layer name and no memory/energy state — so one
// entry serves every equal-shaped layer under any configuration that
// agrees on those fields.
type sramTraceBlobs struct {
	ifmap, filter, ofmap []byte
}

func (b *sramTraceBlobs) size() int64 {
	return int64(len(b.ifmap) + len(b.filter) + len(b.ofmap))
}

var sramTraceSuffixes = [3]string{
	"_sram_ifmap_read.csv", "_sram_filter_read.csv", "_sram_ofmap_write.csv",
}

func (b *sramTraceBlobs) writeFiles(base string) error {
	for i, blob := range [3][]byte{b.ifmap, b.filter, b.ofmap} {
		if err := os.WriteFile(base+sramTraceSuffixes[i], blob, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func (s *Simulator) writeSRAMTraces(base string, m, n, k int) error {
	cc := s.traceCache()
	var key simcache.Key
	if cc != nil {
		h := simcache.NewHasher()
		h.String("scalesim/trace-sram/v1")
		for _, v := range []int{int(s.cfg.Dataflow), s.cfg.ArrayRows, s.cfg.ArrayCols, m, n, k} {
			h.Int(int64(v))
		}
		key = h.Sum()
		if v, ok := cc.Get(key); ok {
			return v.(*sramTraceBlobs).writeFiles(base)
		}
	}

	fIf, err := os.Create(base + sramTraceSuffixes[0])
	if err != nil {
		return err
	}
	defer fIf.Close()
	fFl, err := os.Create(base + sramTraceSuffixes[1])
	if err != nil {
		return err
	}
	defer fFl.Close()
	fOf, err := os.Create(base + sramTraceSuffixes[2])
	if err != nil {
		return err
	}
	defer fOf.Close()

	// With a cache attached, tee the rendered bytes into memory so equal
	// shapes (and later WriteTraces calls) skip regeneration. The tee is
	// capped at the cache's admissible entry size: traces too large to
	// cache stream to disk as before without being held in RAM.
	dstIf, dstFl, dstOf := io.Writer(fIf), io.Writer(fFl), io.Writer(fOf)
	budget := &traceBudget{}
	bIf, bFl, bOf := cappedBuffer{budget: budget}, cappedBuffer{budget: budget}, cappedBuffer{budget: budget}
	if cc != nil {
		// One budget across the three blobs: they are cached (and size-
		// checked) as a single entry.
		budget.remaining = cc.MaxEntryBytes()
		dstIf = io.MultiWriter(fIf, &bIf)
		dstFl = io.MultiWriter(fFl, &bFl)
		dstOf = io.MultiWriter(fOf, &bOf)
	}

	wIf := trace.NewSRAMWriter(dstIf)
	wFl := trace.NewSRAMWriter(dstFl)
	wOf := trace.NewSRAMWriter(dstOf)
	err = systolic.Stream(s.cfg.Dataflow, s.cfg.ArrayRows, s.cfg.ArrayCols,
		systolic.Gemm{M: m, N: n, K: k}, func(d *systolic.Demand) bool {
			wIf.Row(d.Cycle, d.IfmapReads)
			wFl.Row(d.Cycle, d.FilterReads)
			wOf.Row(d.Cycle, d.OfmapWrites)
			return true
		})
	if err != nil {
		return err
	}
	for _, w := range []*trace.SRAMWriter{wIf, wFl, wOf} {
		if err := w.Close(); err != nil {
			return err
		}
	}
	if cc != nil && !budget.over {
		blobs := &sramTraceBlobs{
			ifmap: bIf.buf.Bytes(), filter: bFl.buf.Bytes(), ofmap: bOf.buf.Bytes(),
		}
		cc.Put(key, blobs, blobs.size())
	}
	return nil
}

// writeDRAMTrace runs the cycle-accurate memory workflow for the layer
// shape and emits the timestamped transaction trace. The rendered bytes
// are keyed by the full simulation-relevant configuration plus the GEMM
// dims: unlike the SRAM traces they depend on the memory section, SRAM
// sizes, word size and bandwidth.
func (s *Simulator) writeDRAMTrace(base string, dramBase simcache.Key, m, n, k int) error {
	cc := s.traceCache()
	var key simcache.Key
	if cc != nil {
		h := simcache.NewHasher()
		h.Bytes(dramBase[:])
		for _, v := range []int{m, n, k} {
			h.Int(int64(v))
		}
		key = h.Sum()
		if v, ok := cc.Get(key); ok {
			return os.WriteFile(base+"_dram_trace.csv", v.([]byte), 0o644)
		}
	}

	tech, err := dram.TechByName(s.cfg.Memory.Technology)
	if err != nil {
		return err
	}
	sys, err := dram.New(tech, dram.Options{
		Channels:   s.cfg.Memory.Channels,
		QueueDepth: s.cfg.Memory.ReadQueueDepth,
	})
	if err != nil {
		return err
	}
	ifW, flW, ofW := s.cfg.SRAMWords()
	sched, err := sram.BuildSchedule(s.cfg.Dataflow, s.cfg.ArrayRows, s.cfg.ArrayCols,
		systolic.Gemm{M: m, N: n, K: k}, sram.ScheduleOptions{
			IfmapSRAMWords: ifW, FilterSRAMWords: flW, OfmapSRAMWords: ofW,
		})
	if err != nil {
		return err
	}
	res, err := sram.Simulate(sched, sys, sram.Options{
		WordBytes:           s.cfg.WordBytes,
		MaxRequestsPerCycle: maxi(1, s.cfg.BandwidthWords*s.cfg.WordBytes/64),
		StreamWindowWords:   ifW / 2,
		CollectTrace:        true,
	})
	if err != nil {
		return err
	}
	fD, err := os.Create(base + "_dram_trace.csv")
	if err != nil {
		return err
	}
	defer fD.Close()
	dst := io.Writer(fD)
	buf := cappedBuffer{budget: &traceBudget{}}
	if cc != nil {
		buf.budget.remaining = cc.MaxEntryBytes()
		dst = io.MultiWriter(fD, &buf)
	}
	wD := trace.NewDRAMWriter(dst)
	for _, e := range res.Trace {
		lat := e.Done - e.Arrive
		if lat < 0 {
			lat = 0
		}
		wD.Record(trace.DRAMRecord{Cycle: e.Arrive, Addr: e.Addr, Write: e.Write, Latency: lat})
	}
	if err := wD.Close(); err != nil {
		return err
	}
	if cc != nil && !buf.budget.over {
		cc.Put(key, buf.buf.Bytes(), int64(buf.buf.Len()))
	}
	return nil
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
