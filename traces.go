package scalesim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scalesim/internal/dram"
	"scalesim/internal/sram"
	"scalesim/internal/systolic"
	"scalesim/internal/trace"
)

// WriteTraces emits SCALE-Sim's cycle-accurate trace files for every layer
// of the topology into dir:
//
//	<layer>_sram_ifmap_read.csv   per-cycle ifmap SRAM read addresses
//	<layer>_sram_filter_read.csv  per-cycle filter SRAM read addresses
//	<layer>_sram_ofmap_write.csv  per-cycle ofmap SRAM write addresses
//	<layer>_dram_trace.csv        timestamped DRAM transactions with
//	                              round-trip latencies (only when the
//	                              memory model is enabled)
//
// Traces can be large: a layer with C compute cycles produces O(C) rows.
func (s *Simulator) WriteTraces(topo *Topology, dir string) error {
	if err := s.cfg.Validate(); err != nil {
		return err
	}
	if err := topo.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range topo.Layers {
		if err := s.writeLayerTraces(&topo.Layers[i], dir); err != nil {
			return fmt.Errorf("scalesim: traces for layer %q: %w", topo.Layers[i].Name, err)
		}
	}
	return nil
}

func (s *Simulator) writeLayerTraces(l *Layer, dir string) error {
	m, n, k := l.GEMMDims()
	base := filepath.Join(dir, sanitize(l.Name))

	fIf, err := os.Create(base + "_sram_ifmap_read.csv")
	if err != nil {
		return err
	}
	defer fIf.Close()
	fFl, err := os.Create(base + "_sram_filter_read.csv")
	if err != nil {
		return err
	}
	defer fFl.Close()
	fOf, err := os.Create(base + "_sram_ofmap_write.csv")
	if err != nil {
		return err
	}
	defer fOf.Close()

	wIf := trace.NewSRAMWriter(fIf)
	wFl := trace.NewSRAMWriter(fFl)
	wOf := trace.NewSRAMWriter(fOf)
	err = systolic.Stream(s.cfg.Dataflow, s.cfg.ArrayRows, s.cfg.ArrayCols,
		systolic.Gemm{M: m, N: n, K: k}, func(d *systolic.Demand) bool {
			wIf.Row(d.Cycle, d.IfmapReads)
			wFl.Row(d.Cycle, d.FilterReads)
			wOf.Row(d.Cycle, d.OfmapWrites)
			return true
		})
	if err != nil {
		return err
	}
	for _, w := range []*trace.SRAMWriter{wIf, wFl, wOf} {
		if err := w.Close(); err != nil {
			return err
		}
	}

	if !s.cfg.Memory.Enabled {
		return nil
	}
	tech, err := dram.TechByName(s.cfg.Memory.Technology)
	if err != nil {
		return err
	}
	sys, err := dram.New(tech, dram.Options{
		Channels:   s.cfg.Memory.Channels,
		QueueDepth: s.cfg.Memory.ReadQueueDepth,
	})
	if err != nil {
		return err
	}
	ifW, flW, ofW := s.cfg.SRAMWords()
	sched, err := sram.BuildSchedule(s.cfg.Dataflow, s.cfg.ArrayRows, s.cfg.ArrayCols,
		systolic.Gemm{M: m, N: n, K: k}, sram.ScheduleOptions{
			IfmapSRAMWords: ifW, FilterSRAMWords: flW, OfmapSRAMWords: ofW,
		})
	if err != nil {
		return err
	}
	res, err := sram.Simulate(sched, sys, sram.Options{
		WordBytes:           s.cfg.WordBytes,
		MaxRequestsPerCycle: maxi(1, s.cfg.BandwidthWords*s.cfg.WordBytes/64),
		StreamWindowWords:   ifW / 2,
		CollectTrace:        true,
	})
	if err != nil {
		return err
	}
	fD, err := os.Create(base + "_dram_trace.csv")
	if err != nil {
		return err
	}
	defer fD.Close()
	wD := trace.NewDRAMWriter(fD)
	for _, e := range res.Trace {
		lat := e.Done - e.Arrive
		if lat < 0 {
			lat = 0
		}
		wD.Record(trace.DRAMRecord{Cycle: e.Arrive, Addr: e.Addr, Write: e.Write, Latency: lat})
	}
	return wD.Close()
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
